//! Recursive-descent parser for the SELECT/WHERE fragment.
//!
//! Grammar (paper §2.2 plus the standard conveniences real queries use):
//!
//! ```text
//! Query      := Prologue Select
//! Prologue   := ( "PREFIX" PNAME_NS IRIREF )*
//! Select     := "SELECT" "DISTINCT"? ( "*" | Var+ ) "WHERE" GroupGraph
//! GroupGraph := "{" ( TriplesSameSubject ( "." TriplesSameSubject? )* )? "}"
//! TriplesSameSubject := (Var | Iri) PropertyList
//! PropertyList := Verb ObjectList ( ";" Verb ObjectList )*
//! Verb       := Iri | "a"            -- variable predicates: Unsupported
//! ObjectList := Object ( "," Object )*
//! Object     := Var | Iri | Literal
//! ```
//!
//! SPARQL operators beyond the fragment (`FILTER`, `OPTIONAL`, `UNION`,
//! `GRAPH`, `GROUP`, `ORDER`, `LIMIT`, …) raise
//! [`SparqlErrorKind::Unsupported`](crate::SparqlErrorKind::Unsupported).

use crate::ast::{Projection, SelectQuery, TermPattern, TriplePattern};
use crate::error::SparqlError;
use crate::token::{tokenize, Spanned, Token};
use rdf_model::PrefixMap;

/// RDF namespace IRI of the `a` keyword.
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Keywords that are valid SPARQL but outside the paper's fragment.
const UNSUPPORTED_KEYWORDS: &[&str] = &[
    "FILTER",
    "OPTIONAL",
    "UNION",
    "GRAPH",
    "GROUP",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "HAVING",
    "BIND",
    "VALUES",
    "MINUS",
    "SERVICE",
    "CONSTRUCT",
    "ASK",
    "DESCRIBE",
    "INSERT",
    "DELETE",
    "EXISTS",
    "REDUCED",
    "FROM",
];

/// Parse a `SELECT … WHERE { … }` query.
pub fn parse_select(input: &str) -> Result<SelectQuery, SparqlError> {
    // Unsupported operators often carry syntax the tokenizer rejects (e.g.
    // the parentheses of FILTER), so classify them *before* tokenizing.
    scan_unsupported_keywords(input)?;
    let tokens = tokenize(input)?;
    Parser {
        tokens,
        pos: 0,
        prefixes: PrefixMap::new(),
    }
    .query()
}

/// Report the first unsupported SPARQL keyword appearing outside literals,
/// IRIs and comments.
fn scan_unsupported_keywords(input: &str) -> Result<(), SparqlError> {
    let (mut line, mut column) = (1usize, 1usize);
    let mut word = String::new();
    let (mut word_line, mut word_column) = (1usize, 1usize);
    // Words touching a ':' are prefixed-name parts (`x:filter`), never
    // keywords; words after '?'/'$' are variables.
    let mut word_is_name = false;
    let mut chars = input.chars().peekable();

    let flush = |word: &mut String,
                 is_name: &mut bool,
                 line: usize,
                 column: usize|
     -> Result<(), SparqlError> {
        let upper = word.to_ascii_uppercase();
        if !*is_name && UNSUPPORTED_KEYWORDS.contains(&upper.as_str()) {
            return Err(SparqlError::unsupported(
                line,
                column,
                format!(
                    "'{upper}' is outside the SELECT/WHERE fragment the engine supports (paper §1)"
                ),
            ));
        }
        word.clear();
        *is_name = false;
        Ok(())
    };

    while let Some(c) = chars.next() {
        match c {
            '"' | '\'' => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                column += 1;
                // skip to the closing quote, honoring escapes
                while let Some(d) = chars.next() {
                    if d == '\n' {
                        line += 1;
                        column = 1;
                    } else {
                        column += 1;
                    }
                    if d == '\\' {
                        if chars.next().is_some() {
                            column += 1;
                        }
                    } else if d == c {
                        break;
                    }
                }
            }
            '<' => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                column += 1;
                for d in chars.by_ref() {
                    column += 1;
                    if d == '>' || d == '\n' {
                        if d == '\n' {
                            line += 1;
                            column = 1;
                        }
                        break;
                    }
                }
            }
            '#' => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                for d in chars.by_ref() {
                    if d == '\n' {
                        line += 1;
                        column = 1;
                        break;
                    }
                }
            }
            ':' => {
                // A word adjacent to ':' on either side is part of a
                // prefixed name, not a keyword.
                word.clear();
                word_is_name = true;
                column += 1;
            }
            '?' | '$' => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                word_is_name = true; // variable name follows
                column += 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                if word.is_empty() {
                    word_line = line;
                    word_column = column;
                }
                word.push(c);
                column += 1;
            }
            '\n' => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                line += 1;
                column = 1;
            }
            _ => {
                flush(&mut word, &mut word_is_name, word_line, word_column)?;
                column += 1;
            }
        }
    }
    flush(&mut word, &mut word_is_name, word_line, word_column)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        self.peek()
            .map(|s| (s.line, s.column))
            .or_else(|| self.tokens.last().map(|s| (s.line, s.column)))
            .unwrap_or((1, 1))
    }

    fn syntax(&self, message: impl Into<String>) -> SparqlError {
        let (line, column) = self.here();
        SparqlError::syntax(line, column, message)
    }

    fn unsupported(&self, message: impl Into<String>) -> SparqlError {
        let (line, column) = self.here();
        SparqlError::unsupported(line, column, message)
    }

    /// Is the current token the given case-insensitive keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { token: Token::Ident(id), .. }) if id.eq_ignore_ascii_case(kw))
    }

    fn check_not_unsupported(&self) -> Result<(), SparqlError> {
        if let Some(Spanned {
            token: Token::Ident(id),
            ..
        }) = self.peek()
        {
            let upper = id.to_ascii_uppercase();
            if UNSUPPORTED_KEYWORDS.contains(&upper.as_str()) {
                return Err(self.unsupported(format!(
                    "'{upper}' is outside the SELECT/WHERE fragment the engine supports (paper §1)"
                )));
            }
        }
        Ok(())
    }

    fn query(mut self) -> Result<SelectQuery, SparqlError> {
        self.prologue()?;
        self.check_not_unsupported()?;
        if !self.at_keyword("SELECT") {
            return Err(self.syntax("expected 'SELECT'"));
        }
        self.bump();

        let distinct = if self.at_keyword("DISTINCT") {
            self.bump();
            true
        } else {
            false
        };

        let projection = self.projection()?;

        if self.at_keyword("WHERE") {
            self.bump();
        }
        let patterns = self.group_graph_pattern()?;

        if let Some(t) = self.peek() {
            self.check_not_unsupported()?;
            return Err(self.syntax(format!("unexpected trailing token {:?}", t.token)));
        }

        // Validate projection variables exist in the pattern.
        let query = SelectQuery {
            projection,
            distinct,
            patterns,
        };
        if let Projection::Variables(vars) = &query.projection {
            let in_pattern = query.pattern_variables();
            for v in vars {
                if !in_pattern.contains(&v.as_ref()) {
                    return Err(SparqlError::syntax(
                        1,
                        1,
                        format!("projected variable ?{v} does not occur in the WHERE clause"),
                    ));
                }
            }
        }
        Ok(query)
    }

    fn prologue(&mut self) -> Result<(), SparqlError> {
        while self.at_keyword("PREFIX") || self.at_keyword("BASE") {
            if self.at_keyword("BASE") {
                return Err(
                    self.unsupported("'BASE' declarations are not supported; use full IRIs")
                );
            }
            self.bump();
            let Some(Spanned {
                token: Token::PrefixedName { prefix, local },
                ..
            }) = self.bump()
            else {
                return Err(self.syntax("expected 'prefix:' after PREFIX"));
            };
            if !local.is_empty() {
                return Err(self.syntax("PREFIX name must end with ':'"));
            }
            let Some(Spanned {
                token: Token::IriRef(namespace),
                ..
            }) = self.bump()
            else {
                return Err(self.syntax("expected '<namespace>' after prefix name"));
            };
            self.prefixes.insert(&prefix, &namespace);
        }
        Ok(())
    }

    fn projection(&mut self) -> Result<Projection, SparqlError> {
        if matches!(self.peek().map(|s| &s.token), Some(Token::Star)) {
            self.bump();
            return Ok(Projection::Star);
        }
        let mut vars: Vec<Box<str>> = Vec::new();
        while let Some(Spanned {
            token: Token::Variable(name),
            ..
        }) = self.peek()
        {
            vars.push(name.as_str().into());
            self.bump();
        }
        if vars.is_empty() {
            return Err(self.syntax("expected '*' or at least one variable after SELECT"));
        }
        Ok(Projection::Variables(vars))
    }

    fn group_graph_pattern(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        match self.bump().map(|s| s.token) {
            Some(Token::LBrace) => {}
            _ => return Err(self.syntax("expected '{' to open the WHERE clause")),
        }
        let mut patterns = Vec::new();
        loop {
            self.check_not_unsupported()?;
            match self.peek().map(|s| &s.token) {
                Some(Token::RBrace) => {
                    self.bump();
                    break;
                }
                Some(Token::Dot) => {
                    // tolerate stray separators
                    self.bump();
                }
                Some(_) => {
                    self.triples_same_subject(&mut patterns)?;
                    // after a subject block: '.', '}' — anything else is an error
                    match self.peek().map(|s| &s.token) {
                        Some(Token::Dot) => {
                            self.bump();
                        }
                        Some(Token::RBrace) | None => {}
                        Some(t) => {
                            return Err(self.syntax(format!("expected '.' or '}}', found {t:?}")))
                        }
                    }
                }
                None => return Err(self.syntax("unexpected end of query inside WHERE clause")),
            }
        }
        if patterns.is_empty() {
            return Err(self.syntax("empty WHERE clause"));
        }
        Ok(patterns)
    }

    fn triples_same_subject(&mut self, out: &mut Vec<TriplePattern>) -> Result<(), SparqlError> {
        let subject = self.term()?;
        if matches!(subject, TermPattern::Literal(_)) {
            return Err(self.syntax("literals cannot appear in subject position"));
        }
        loop {
            let predicate = self.verb()?;
            loop {
                let object = self.term()?;
                out.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if matches!(self.peek().map(|s| &s.token), Some(Token::Comma)) {
                    self.bump();
                } else {
                    break;
                }
            }
            if matches!(self.peek().map(|s| &s.token), Some(Token::Semicolon)) {
                self.bump();
                // Allow a dangling ';' before '.' or '}'.
                if matches!(
                    self.peek().map(|s| &s.token),
                    Some(Token::Dot) | Some(Token::RBrace)
                ) {
                    break;
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    fn verb(&mut self) -> Result<TermPattern, SparqlError> {
        self.check_not_unsupported()?;
        match self.peek().map(|s| &s.token) {
            Some(Token::Variable(v)) => {
                let v = v.clone();
                Err(self.unsupported(format!(
                    "variable predicate ?{v} is outside the paper's fragment (predicates are always IRIs, §2.2)"
                )))
            }
            Some(Token::Ident(id)) if id == "a" => {
                self.bump();
                Ok(TermPattern::iri(RDF_TYPE))
            }
            _ => {
                let term = self.term()?;
                match term {
                    TermPattern::Iri(_) => Ok(term),
                    _ => Err(self.syntax("expected an IRI predicate")),
                }
            }
        }
    }

    fn term(&mut self) -> Result<TermPattern, SparqlError> {
        self.check_not_unsupported()?;
        let Some(spanned) = self.peek().cloned() else {
            return Err(self.syntax("expected a term, found end of query"));
        };
        let term = match spanned.token {
            Token::Variable(name) => TermPattern::var(name),
            Token::IriRef(iri) => TermPattern::iri(iri),
            Token::PrefixedName { prefix, local } => {
                let Some(namespace) = self.prefixes.namespace(&prefix) else {
                    return Err(SparqlError::syntax(
                        spanned.line,
                        spanned.column,
                        format!("unknown prefix '{prefix}:'"),
                    ));
                };
                TermPattern::iri(format!("{namespace}{local}"))
            }
            Token::Literal(lit) => TermPattern::Literal(lit),
            other => return Err(self.syntax(format!("expected a term, found {other:?}"))),
        };
        self.bump();
        Ok(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SparqlErrorKind;
    use rdf_model::Literal;

    #[test]
    fn parses_paper_query_figure_2a() {
        // The running-example query of Fig. 2a (verbatim modulo prefixes).
        let query = parse_select(
            r#"
            PREFIX x: <http://dbpedia.org/resource/>
            PREFIX y: <http://dbpedia.org/ontology/>
            SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
                ?X0 y:livedIn ?X1 .
                ?X1 y:isPartOf ?X2 .
                ?X2 y:hasCapital ?X1 .
                ?X1 y:hasStadium ?X4 .
                ?X3 y:wasBornIn ?X1 .
                ?X3 y:diedIn ?X1 .
                ?X3 y:isMarriedTo ?X6 .
                ?X3 y:wasPartOf ?X5 .
                ?X5 y:wasFormedIn ?X1 .
                ?X4 y:hasCapacity "90000" .
                ?X5 y:hasName "MCA_Band" .
                ?X5 y:foundedIn "1934" .
                ?X3 y:livedIn x:United_States .
            }"#,
        )
        .expect("parse");
        assert_eq!(query.patterns.len(), 13);
        assert_eq!(query.output_variables().len(), 7);
        assert_eq!(
            query.patterns[0].predicate,
            TermPattern::iri("http://dbpedia.org/ontology/livedIn")
        );
        assert_eq!(
            query.patterns[12].object,
            TermPattern::iri("http://dbpedia.org/resource/United_States")
        );
        assert_eq!(
            query.patterns[9].object,
            TermPattern::Literal(Literal::plain("90000"))
        );
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_select("SELECT DISTINCT * WHERE { ?s <http://p> ?o . }").unwrap();
        assert!(q.distinct);
        assert_eq!(q.projection, Projection::Star);
        assert_eq!(q.output_variables(), vec!["s", "o"]);
    }

    #[test]
    fn where_keyword_is_optional() {
        let q = parse_select("SELECT ?s { ?s <http://p> ?o }").unwrap();
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn predicate_object_lists() {
        let q = parse_select(
            "SELECT * WHERE { ?s <http://p> ?a , ?b ; <http://q> ?c . ?x <http://r> ?s . }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 4);
        assert_eq!(q.patterns[0].subject, q.patterns[1].subject);
        assert_eq!(q.patterns[0].predicate, q.patterns[1].predicate);
        assert_eq!(q.patterns[2].predicate, TermPattern::iri("http://q"));
        assert_eq!(q.patterns[3].subject, TermPattern::var("x"));
    }

    #[test]
    fn rdf_type_shorthand() {
        let q = parse_select("SELECT * WHERE { ?s a <http://x/Class> . }").unwrap();
        assert_eq!(
            q.patterns[0].predicate,
            TermPattern::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        );
    }

    #[test]
    fn rejects_variable_predicate_as_unsupported() {
        let err = parse_select("SELECT * WHERE { ?s ?p ?o . }").unwrap_err();
        assert_eq!(err.kind, SparqlErrorKind::Unsupported);
        assert!(err.message.contains("predicate"));
    }

    #[test]
    fn rejects_filter_union_optional_as_unsupported() {
        for q in [
            "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o > 5) }",
            "SELECT * WHERE { { ?s <http://p> ?o } UNION { ?s <http://q> ?o } }",
            "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?x } }",
        ] {
            match parse_select(q) {
                Err(e) => assert_eq!(e.kind, SparqlErrorKind::Unsupported, "query: {q}"),
                Ok(_) => {
                    // UNION case: '{' nested — tokenizes but must fail somehow
                    panic!("query should not parse: {q}")
                }
            }
        }
    }

    #[test]
    fn rejects_unknown_prefix() {
        let err = parse_select("SELECT * WHERE { ?s zz:p ?o . }").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
    }

    #[test]
    fn rejects_empty_where() {
        assert!(parse_select("SELECT * WHERE { }").is_err());
    }

    #[test]
    fn rejects_projection_not_in_pattern() {
        let err = parse_select("SELECT ?nope WHERE { ?s <http://p> ?o . }").unwrap_err();
        assert!(err.message.contains("nope"));
    }

    #[test]
    fn rejects_literal_subject() {
        let err = parse_select("SELECT * WHERE { \"lit\" <http://p> ?o . }").unwrap_err();
        assert!(err.message.contains("subject"));
    }

    #[test]
    fn trailing_dot_optional_before_brace() {
        let q = parse_select("SELECT * WHERE { ?s <http://p> ?o }").unwrap();
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn numeric_literal_objects() {
        let q = parse_select("SELECT * WHERE { ?s <http://p> 1934 . }").unwrap();
        let TermPattern::Literal(lit) = &q.patterns[0].object else {
            panic!("expected literal");
        };
        assert_eq!(lit.lexical(), "1934");
    }

    #[test]
    fn iri_subject_and_object_constants() {
        let q = parse_select(
            "SELECT ?o WHERE { <http://x/A> <http://p> ?o . ?o <http://q> <http://x/B> . }",
        )
        .unwrap();
        assert_eq!(q.patterns[0].subject, TermPattern::iri("http://x/A"));
        assert_eq!(q.patterns[1].object, TermPattern::iri("http://x/B"));
    }

    #[test]
    fn base_is_unsupported() {
        let err =
            parse_select("BASE <http://x/> SELECT * WHERE { ?s <http://p> ?o . }").unwrap_err();
        assert_eq!(err.kind, SparqlErrorKind::Unsupported);
    }

    #[test]
    fn keyword_like_names_are_not_flagged() {
        // Local names and variables that *look* like unsupported keywords
        // must not trip the pre-scan.
        let q = parse_select(
            "PREFIX x: <http://x/> SELECT ?filter WHERE { ?filter x:filter x:LIMIT . }",
        )
        .unwrap();
        assert_eq!(q.output_variables(), vec!["filter"]);
        assert_eq!(q.patterns[0].object, TermPattern::iri("http://x/LIMIT"));
    }

    #[test]
    fn keywords_inside_literals_are_not_flagged() {
        let q = parse_select("SELECT * WHERE { ?s <http://p> \"use FILTER here\" . }").unwrap();
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_select("select ?s where { ?s <http://p> ?o . }").unwrap();
        assert_eq!(q.output_variables(), vec!["s"]);
    }
}
