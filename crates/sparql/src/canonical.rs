//! Query canonicalization — the prepared-plan cache key.
//!
//! Two SPARQL texts that differ only in whitespace, comment placement, or
//! variable *names* describe the same query multigraph and deserve the same
//! prepared plan. Parsing already erases lexical noise; [`canonicalize`]
//! erases the remaining alpha-equivalence:
//!
//! * every variable is renamed to its **first-occurrence index** over the
//!   WHERE patterns (`?city` → `?0`, `?person` → `?1`, …), scanning
//!   subject-then-object within each pattern in pattern order;
//! * `SELECT *` is expanded to the explicit variable list it denotes (the
//!   pattern variables in first-occurrence order), so `SELECT *` and the
//!   equivalent explicit projection share a key;
//! * projection-only variables (legal in the AST, they just never bind) are
//!   assigned fresh indices after the pattern variables, in projection order.
//!
//! The result is itself a [`SelectQuery`] — renaming is a bijection per
//! query, so two queries canonicalize identically **iff** they are equal up
//! to variable names. Nothing else is normalized on purpose: reordered
//! triple patterns produce a different (still correct) key and simply miss
//! the cache, and constants are never touched — `?x <p> "v"` and
//! `?x <p> <v>` must never alias.
//!
//! The canonical form is *compared for full equality* by the plan cache; a
//! 64-bit fingerprint over it is only a bucket index. Collisions therefore
//! cost a cache miss, never a wrong plan.

use crate::ast::{Projection, SelectQuery, TermPattern, TriplePattern};
use std::collections::HashMap;

/// Canonicalize a parsed query (see module docs): variables renamed to
/// first-occurrence indices, `SELECT *` expanded. The output is
/// semantically identical to the input up to variable names.
pub fn canonicalize(query: &SelectQuery) -> SelectQuery {
    let mut renamer = Renamer::default();
    // Pass 1: fix the pattern-variable numbering (first occurrence wins).
    for pattern in &query.patterns {
        for var in pattern.variables() {
            renamer.name_of(var);
        }
    }
    let pattern_vars = renamer.assigned();

    let patterns = query
        .patterns
        .iter()
        .map(|p| TriplePattern {
            subject: renamer.term(&p.subject),
            predicate: renamer.term(&p.predicate),
            object: renamer.term(&p.object),
        })
        .collect();

    // `SELECT *` denotes the pattern variables in first-occurrence order —
    // exactly the numbering above, so the expansion is `?0 ?1 …`.
    let projection = match &query.projection {
        Projection::Star => Projection::Variables(pattern_vars),
        Projection::Variables(vars) => {
            Projection::Variables(vars.iter().map(|v| renamer.name_of(v)).collect())
        }
    };

    SelectQuery {
        projection,
        distinct: query.distinct,
        patterns,
    }
}

/// First-occurrence variable renamer (`?whatever` → `?<index>`).
#[derive(Default)]
struct Renamer {
    names: HashMap<Box<str>, Box<str>>,
    order: Vec<Box<str>>,
}

impl Renamer {
    fn name_of(&mut self, var: &str) -> Box<str> {
        if let Some(canonical) = self.names.get(var) {
            return canonical.clone();
        }
        let canonical: Box<str> = self.names.len().to_string().into();
        self.names.insert(var.into(), canonical.clone());
        self.order.push(canonical.clone());
        canonical
    }

    /// The canonical names assigned so far, in assignment order.
    fn assigned(&self) -> Vec<Box<str>> {
        self.order.clone()
    }

    fn term(&mut self, term: &TermPattern) -> TermPattern {
        match term {
            TermPattern::Variable(v) => TermPattern::Variable(self.name_of(v)),
            constant => constant.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_select;

    fn canon(text: &str) -> SelectQuery {
        canonicalize(&parse_select(text).expect("test query parses"))
    }

    #[test]
    fn whitespace_and_variable_names_are_erased() {
        let a = canon("SELECT * WHERE { ?person <http://p/born> ?city . }");
        let b = canon("SELECT *   WHERE {\n  ?x <http://p/born>\t?y .\n}");
        assert_eq!(a, b);
    }

    #[test]
    fn star_expands_to_equivalent_explicit_projection() {
        let star = canon("SELECT * WHERE { ?a <http://p/e> ?b . }");
        let explicit = canon("SELECT ?a ?b WHERE { ?a <http://p/e> ?b . }");
        assert_eq!(star, explicit);
        // But a *reordered* projection is a different query.
        let swapped = canon("SELECT ?b ?a WHERE { ?a <http://p/e> ?b . }");
        assert_ne!(star, swapped);
    }

    #[test]
    fn renaming_is_consistent_across_patterns() {
        let a = canon("SELECT ?x WHERE { ?x <http://p/e> ?y . ?y <http://p/f> ?x . }");
        let b = canon("SELECT ?u WHERE { ?u <http://p/e> ?w . ?w <http://p/f> ?u . }");
        assert_eq!(a, b);
    }

    #[test]
    fn variable_swap_is_not_erased() {
        // Swapping the *roles* of two variables changes the query (the
        // projection now targets the other end of the edge).
        let a = canon("SELECT ?x WHERE { ?x <http://p/e> ?y . }");
        let b = canon("SELECT ?y WHERE { ?x <http://p/e> ?y . }");
        assert_ne!(a, b);
    }

    #[test]
    fn adversarial_names_cannot_collide_with_canonical_ones() {
        // A user query already using the canonical names `?0`/`?1` — but in
        // swapped positions — must not canonicalize to the identity.
        let tricky = canon("SELECT * WHERE { ?1 <http://p/e> ?0 . }");
        let straight = canon("SELECT * WHERE { ?0 <http://p/e> ?1 . }");
        assert_eq!(
            tricky, straight,
            "both rename to first-occurrence order regardless of spelling"
        );
        let self_edge = canon("SELECT * WHERE { ?0 <http://p/e> ?0 . }");
        assert_ne!(tricky, self_edge, "distinct vars never merge");
    }

    #[test]
    fn constants_are_never_rewritten() {
        let iri = canon("SELECT * WHERE { ?a <http://p/e> <http://x/v> . }");
        let lit = canon("SELECT * WHERE { ?a <http://p/e> \"http://x/v\" . }");
        assert_ne!(iri, lit, "IRI and literal constants must not alias");
        let var = canon("SELECT * WHERE { ?a <http://p/e> ?v . }");
        assert_ne!(iri, var);
    }

    #[test]
    fn pattern_order_is_part_of_the_key() {
        // Reordered triples are semantically equal but keyed separately (a
        // cold miss, never a wrong hit) — documented behaviour.
        let ab = canon("SELECT * WHERE { ?a <http://p/e> ?b . ?b <http://p/f> ?c . }");
        let ba = canon("SELECT * WHERE { ?b <http://p/f> ?c . ?a <http://p/e> ?b . }");
        assert_ne!(ab, ba);
    }

    #[test]
    fn duplicate_patterns_are_preserved() {
        let once = canon("SELECT * WHERE { ?a <http://p/e> ?b . }");
        let twice = canon("SELECT * WHERE { ?a <http://p/e> ?b . ?a <http://p/e> ?b . }");
        assert_ne!(once, twice);
    }

    #[test]
    fn distinct_is_part_of_the_key() {
        let plain = canon("SELECT ?a WHERE { ?a <http://p/e> ?b . }");
        let distinct = canon("SELECT DISTINCT ?a WHERE { ?a <http://p/e> ?b . }");
        assert_ne!(plain, distinct);
    }

    #[test]
    fn projection_only_variables_number_after_pattern_variables() {
        use crate::ast::Projection;
        // The parser may reject unbound projection vars; build the AST
        // directly to pin the numbering rule.
        let query = SelectQuery {
            projection: Projection::Variables(vec!["ghost".into(), "a".into()]),
            distinct: false,
            patterns: vec![TriplePattern::new(
                TermPattern::var("a"),
                TermPattern::iri("http://p/e"),
                TermPattern::var("b"),
            )],
        };
        let canonical = canonicalize(&query);
        assert_eq!(
            canonical.projection,
            Projection::Variables(vec!["2".into(), "0".into()]),
            "pattern vars take 0..n; projection-only vars follow"
        );
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let once =
            canon("SELECT DISTINCT ?p WHERE { ?p <http://p/born> ?c . ?c <http://p/in> ?x . }");
        assert_eq!(canonicalize(&once), once);
    }
}
