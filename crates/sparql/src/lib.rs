#![warn(missing_docs)]
//! SPARQL front-end for the AMbER reproduction.
//!
//! The paper restricts itself to the `SELECT`/`WHERE` fragment of SPARQL with
//! IRI-instantiated predicates (§1, §2.2): a query is a basic graph pattern —
//! a set of triple patterns over variables, IRIs and literals (Fig. 2a).
//! This crate provides that fragment end to end:
//!
//! * [`token`] — hand-written tokenizer with `line:column` positions,
//! * [`ast`] — [`SelectQuery`], [`TriplePattern`], [`TermPattern`],
//! * [`parser`] — recursive-descent parser, including `PREFIX` declarations,
//!   `a` (rdf:type) shorthand, and `;`/`,` predicate-object list notation,
//! * [`printer`] — canonical pretty-printer (used by the workload generator
//!   and for round-trip testing).
//!
//! Operators outside the paper's scope (`FILTER`, `UNION`, `OPTIONAL`,
//! `GROUP BY`, variable predicates, …) are *detected* and rejected with
//! [`SparqlErrorKind::Unsupported`] rather than mis-parsed.

pub mod ast;
pub mod canonical;
pub mod error;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{Projection, SelectQuery, TermPattern, TriplePattern};
pub use canonical::canonicalize;
pub use error::{SparqlError, SparqlErrorKind};
pub use parser::parse_select;
pub use printer::to_sparql;
