//! Tokenizer for the SPARQL SELECT/WHERE fragment.
//!
//! Produces a flat token stream with positions; the parser consumes it with
//! one token of lookahead. Comments (`#` to end of line) are stripped here.

use crate::error::SparqlError;
use rdf_model::{Iri, Literal};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier / keyword (`SELECT`, `WHERE`, `PREFIX`, `a`, …).
    /// Keyword matching is case-insensitive and done by the parser.
    Ident(String),
    /// `?name` or `$name`.
    Variable(String),
    /// `<iri>` (already unescaped).
    IriRef(String),
    /// `prefix:local` (expansion happens in the parser, after `PREFIX`
    /// declarations are known).
    PrefixedName {
        /// The namespace prefix (may be empty for `:local`).
        prefix: String,
        /// The local part after the colon.
        local: String,
    },
    /// String literal with optional `@lang` / `^^<datatype>` suffix,
    /// or a bare numeric literal (typed as xsd:integer / xsd:decimal).
    Literal(Literal),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SparqlError> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::syntax(self.line, self.column, message)
    }

    fn run(mut self) -> Result<Vec<Spanned>, SparqlError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('#') => {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, column) = (self.line, self.column);
            let Some(c) = self.peek() else { break };
            let token = match c {
                '{' => {
                    self.bump();
                    Token::LBrace
                }
                '}' => {
                    self.bump();
                    Token::RBrace
                }
                ';' => {
                    self.bump();
                    Token::Semicolon
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '*' => {
                    self.bump();
                    Token::Star
                }
                '.' => {
                    self.bump();
                    Token::Dot
                }
                '?' | '$' => {
                    self.bump();
                    let name = self.take_while(|c| c.is_alphanumeric() || c == '_');
                    if name.is_empty() {
                        return Err(self.error("empty variable name"));
                    }
                    Token::Variable(name)
                }
                '<' => {
                    self.bump();
                    let mut iri = String::new();
                    loop {
                        match self.bump() {
                            Some('>') => break,
                            Some(ch) if ch.is_whitespace() => {
                                return Err(self.error("whitespace inside IRI"))
                            }
                            Some(ch) => iri.push(ch),
                            None => return Err(self.error("unterminated IRI")),
                        }
                    }
                    Token::IriRef(iri)
                }
                '"' | '\'' => {
                    let quote = c;
                    self.bump();
                    let lexical = self.string_body(quote)?;
                    match self.peek() {
                        Some('@') => {
                            self.bump();
                            let lang = self.take_while(|c| c.is_ascii_alphanumeric() || c == '-');
                            if lang.is_empty() {
                                return Err(self.error("empty language tag"));
                            }
                            Token::Literal(Literal::lang(lexical, lang))
                        }
                        Some('^') => {
                            self.bump();
                            if self.bump() != Some('^') {
                                return Err(self.error("expected '^^' before datatype"));
                            }
                            if self.bump() != Some('<') {
                                return Err(self.error("expected '<' after '^^'"));
                            }
                            let mut iri = String::new();
                            loop {
                                match self.bump() {
                                    Some('>') => break,
                                    Some(ch) => iri.push(ch),
                                    None => return Err(self.error("unterminated datatype IRI")),
                                }
                            }
                            Token::Literal(Literal::typed(lexical, Iri::new(iri)))
                        }
                        _ => Token::Literal(Literal::plain(lexical)),
                    }
                }
                c if c.is_ascii_digit() || c == '-' || c == '+' => {
                    let body = self.take_while(|c| {
                        c.is_ascii_digit()
                            || c == '.'
                            || c == '-'
                            || c == '+'
                            || c == 'e'
                            || c == 'E'
                    });
                    // A trailing "." is the statement terminator, not part of
                    // the number; give it back to the stream as Dot tokens.
                    let trimmed = body.trim_end_matches('.');
                    let dots_trimmed = body.len() - trimmed.len();
                    out.push(Spanned {
                        token: numeric_token(trimmed, || {
                            SparqlError::syntax(
                                line,
                                column,
                                format!("bad numeric literal '{body}'"),
                            )
                        })?,
                        line,
                        column,
                    });
                    for _ in 0..dots_trimmed {
                        out.push(Spanned {
                            token: Token::Dot,
                            line: self.line,
                            column: self.column,
                        });
                    }
                    continue;
                }
                c if is_name_start(c) => {
                    let first = self.take_while(is_name_char);
                    if self.peek() == Some(':') {
                        self.bump();
                        let local = self.take_while(|c| is_name_char(c) || c == '.');
                        // Trailing dots belong to the statement terminator.
                        let trimmed = local.trim_end_matches('.');
                        let dots = local.len() - trimmed.len();
                        out.push(Spanned {
                            token: Token::PrefixedName {
                                prefix: first,
                                local: trimmed.to_string(),
                            },
                            line,
                            column,
                        });
                        for _ in 0..dots {
                            out.push(Spanned {
                                token: Token::Dot,
                                line: self.line,
                                column: self.column,
                            });
                        }
                        continue;
                    }
                    Token::Ident(first)
                }
                ':' => {
                    // Default-prefix name `:local`.
                    self.bump();
                    let local = self.take_while(|c| is_name_char(c) || c == '.');
                    let trimmed = local.trim_end_matches('.');
                    let dots = local.len() - trimmed.len();
                    out.push(Spanned {
                        token: Token::PrefixedName {
                            prefix: String::new(),
                            local: trimmed.to_string(),
                        },
                        line,
                        column,
                    });
                    for _ in 0..dots {
                        out.push(Spanned {
                            token: Token::Dot,
                            line: self.line,
                            column: self.column,
                        });
                    }
                    continue;
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            };
            out.push(Spanned {
                token,
                line,
                column,
            });
        }
        Ok(out)
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn string_body(&mut self, quote: char) -> Result<String, SparqlError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('t') => s.push('\t'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('"') => s.push('"'),
                    Some('\'') => s.push('\''),
                    Some('\\') => s.push('\\'),
                    Some('u') | Some('U') => return Err(self.error(
                        "\\u escapes in SPARQL literals are not supported; use the raw character",
                    )),
                    Some(c) => return Err(self.error(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.error("unterminated string")),
                },
                Some(c) => s.push(c),
                None => return Err(self.error("unterminated string")),
            }
        }
    }
}

fn numeric_token(body: &str, err: impl Fn() -> SparqlError) -> Result<Token, SparqlError> {
    const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    if body.parse::<i64>().is_ok() {
        Ok(Token::Literal(Literal::typed(body, Iri::new(XSD_INTEGER))))
    } else if body.parse::<f64>().is_ok() {
        Ok(Token::Literal(Literal::typed(body, Iri::new(XSD_DECIMAL))))
    } else {
        Err(err())
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_select_skeleton() {
        let t = toks("SELECT ?x WHERE { ?x <http://p> ?y . }");
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Variable("x".into()),
                Token::Ident("WHERE".into()),
                Token::LBrace,
                Token::Variable("x".into()),
                Token::IriRef("http://p".into()),
                Token::Variable("y".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn tokenizes_prefixed_names_with_terminator() {
        let t = toks("?x y:livedIn x:United_States.");
        assert_eq!(
            t,
            vec![
                Token::Variable("x".into()),
                Token::PrefixedName {
                    prefix: "y".into(),
                    local: "livedIn".into()
                },
                Token::PrefixedName {
                    prefix: "x".into(),
                    local: "United_States".into()
                },
                Token::Dot,
            ]
        );
    }

    #[test]
    fn tokenizes_literals() {
        let t = toks(r#""MCA_Band" "London"@en "5"^^<http://www.w3.org/2001/XMLSchema#int> 90000"#);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], Token::Literal(Literal::plain("MCA_Band")));
        assert_eq!(t[1], Token::Literal(Literal::lang("London", "en")));
        assert!(matches!(&t[3], Token::Literal(l) if l.lexical() == "90000"));
    }

    #[test]
    fn numeric_literal_before_dot_terminator() {
        let t = toks("?x <http://p> 1934 .");
        assert!(matches!(&t[2], Token::Literal(l) if l.lexical() == "1934"));
        assert_eq!(t[3], Token::Dot);
        // also when the dot is glued to the number
        let t = toks("?x <http://p> 1934.");
        assert!(matches!(&t[2], Token::Literal(l) if l.lexical() == "1934"));
        assert_eq!(t[3], Token::Dot);
    }

    #[test]
    fn comments_are_stripped() {
        let t = toks("SELECT # projection\n?x");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn dollar_variables() {
        assert_eq!(toks("$v"), vec![Token::Variable("v".into())]);
    }

    #[test]
    fn error_reports_position() {
        let err = tokenize("SELECT ?x\n  @oops").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("<open").is_err());
    }

    #[test]
    fn default_prefix_names() {
        let t = toks(":Local");
        assert_eq!(
            t,
            vec![Token::PrefixedName {
                prefix: String::new(),
                local: "Local".into()
            }]
        );
    }
}
