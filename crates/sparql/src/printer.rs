//! Canonical SPARQL pretty-printer.
//!
//! Produces the textual form consumed by [`crate::parse_select`]; the
//! workload generator (paper §7.2) emits queries through this printer so that
//! every engine under test receives identical SPARQL text.

use crate::ast::{Projection, SelectQuery};
use std::fmt::Write as _;

/// Render a query as canonical SPARQL text (full IRIs, one pattern per line).
pub fn to_sparql(query: &SelectQuery) -> String {
    let mut out = String::new();
    out.push_str("SELECT ");
    if query.distinct {
        out.push_str("DISTINCT ");
    }
    match &query.projection {
        Projection::Star => out.push('*'),
        Projection::Variables(vars) => {
            let mut first = true;
            for v in vars {
                if !first {
                    out.push(' ');
                }
                write!(out, "?{v}").expect("write to String");
                first = false;
            }
        }
    }
    out.push_str(" WHERE {\n");
    for pattern in &query.patterns {
        writeln!(out, "  {pattern}").expect("write to String");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{TermPattern, TriplePattern};
    use crate::parser::parse_select;
    use rdf_model::Literal;

    fn sample() -> SelectQuery {
        SelectQuery {
            projection: Projection::Variables(vec!["s".into(), "o".into()]),
            distinct: true,
            patterns: vec![
                TriplePattern::new(
                    TermPattern::var("s"),
                    TermPattern::iri("http://y/livedIn"),
                    TermPattern::var("o"),
                ),
                TriplePattern::new(
                    TermPattern::var("s"),
                    TermPattern::iri("http://y/hasName"),
                    TermPattern::Literal(Literal::plain("MCA Band")),
                ),
                TriplePattern::new(
                    TermPattern::var("o"),
                    TermPattern::iri("http://y/isPartOf"),
                    TermPattern::iri("http://x/England"),
                ),
            ],
        }
    }

    #[test]
    fn prints_expected_shape() {
        let text = to_sparql(&sample());
        assert!(text.starts_with("SELECT DISTINCT ?s ?o WHERE {"));
        assert!(text.contains("?s <http://y/livedIn> ?o ."));
        assert!(text.contains("\"MCA Band\""));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn round_trips_through_parser() {
        let query = sample();
        let reparsed = parse_select(&to_sparql(&query)).expect("reparse printed query");
        assert_eq!(reparsed, query);
    }

    #[test]
    fn star_projection_prints() {
        let mut q = sample();
        q.projection = Projection::Star;
        q.distinct = false;
        let text = to_sparql(&q);
        assert!(text.starts_with("SELECT * WHERE {"));
        assert_eq!(parse_select(&text).unwrap(), q);
    }
}
