//! Property-based round-trip: printer output always re-parses to the same
//! AST, for arbitrary queries in the supported fragment.

use amber_sparql::{parse_select, to_sparql, Projection, SelectQuery, TermPattern, TriplePattern};
use proptest::prelude::*;
use rdf_model::{Iri, Literal};

fn arb_var() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,6}".prop_map(|s| s)
}

fn arb_iri() -> impl Strategy<Value = String> {
    "[a-z]{1,8}(/[a-zA-Z0-9_.-]{1,10}){1,2}".prop_map(|path| format!("http://{path}"))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // printable strings without control characters
        "[ -~]{0,12}".prop_map(Literal::plain),
        ("[ -~]{0,8}", "[a-z]{2}(-[A-Z]{2})?").prop_map(|(l, tag)| Literal::lang(l, tag)),
        ("[ -~]{0,8}", arb_iri()).prop_map(|(l, dt)| Literal::typed(l, Iri::new(dt))),
    ]
}

fn arb_subject() -> impl Strategy<Value = TermPattern> {
    prop_oneof![
        arb_var().prop_map(TermPattern::var),
        arb_iri().prop_map(TermPattern::iri),
    ]
}

fn arb_object() -> impl Strategy<Value = TermPattern> {
    prop_oneof![
        arb_var().prop_map(TermPattern::var),
        arb_iri().prop_map(TermPattern::iri),
        arb_literal().prop_map(TermPattern::Literal),
    ]
}

fn arb_pattern() -> impl Strategy<Value = TriplePattern> {
    (arb_subject(), arb_iri(), arb_object())
        .prop_map(|(s, p, o)| TriplePattern::new(s, TermPattern::iri(p), o))
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (prop::collection::vec(arb_pattern(), 1..12), any::<bool>()).prop_map(|(patterns, distinct)| {
        // Projection: Star, or a prefix of the pattern variables.
        let query = SelectQuery {
            projection: Projection::Star,
            distinct,
            patterns,
        };
        let vars: Vec<Box<str>> = query
            .pattern_variables()
            .into_iter()
            .map(Into::into)
            .collect();
        let projection = if vars.is_empty() {
            Projection::Star
        } else {
            Projection::Variables(vars.into_iter().take(3).collect())
        };
        SelectQuery {
            projection,
            ..query
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_query_reparses_identically(query in arb_query()) {
        let text = to_sparql(&query);
        let reparsed = parse_select(&text)
            .unwrap_or_else(|e| panic!("printer produced unparseable text: {e}\n{text}"));
        prop_assert_eq!(reparsed, query);
    }

    /// The tokenizer's position tracking never panics on arbitrary input
    /// (errors are fine, crashes are not).
    #[test]
    fn parser_never_panics(input in "[ -~\\n]{0,120}") {
        let _ = parse_select(&input);
    }
}
