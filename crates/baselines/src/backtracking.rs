//! The no-index graph backtracking baseline (gStore / TurboHom++ stand-in).
//!
//! Same multigraph, same homomorphism semantics as AMbER — but with
//! **none** of its machinery: no attribute index, no signature R-tree, no
//! OTIL neighbourhood index, and no core–satellite decomposition. The query
//! vertices are matched one at a time in degree order over the raw
//! adjacency lists, and every degree-1 vertex is enumerated explicitly
//! instead of being batch-resolved as a satellite set. The paper positions
//! TurboHom++ exactly here: "unlike our approach, TurboHom++ does not index
//! the RDF graph" (§6). Benchmarked against AMbER, this isolates the
//! contribution of `I = {A, S, N}` + the decomposition.

use crate::common::{RowCollector, UNBOUND};
use amber::{EngineError, ExecOptions, QueryOutcome, SparqlEngine};
use amber_multigraph::{
    DataGraph, Direction, GroundCheck, QVertexId, QueryGraph, RdfGraph, VertexId,
};
use amber_util::{Deadline, Stopwatch};
use std::sync::Arc;

/// The plain backtracking engine.
pub struct BacktrackingEngine {
    rdf: Arc<RdfGraph>,
}

impl BacktrackingEngine {
    /// Wrap a loaded graph; no auxiliary structures are built.
    pub fn new(rdf: Arc<RdfGraph>) -> Self {
        Self { rdf }
    }

    /// Local (non-edge) constraints of one query vertex against a data
    /// vertex, checked directly on the graph.
    fn local_ok(&self, qg: &QueryGraph, u: QVertexId, v: VertexId) -> bool {
        let graph = self.rdf.graph();
        let vertex = qg.vertex(u);
        if !graph.has_attributes(v, &vertex.attrs) {
            return false;
        }
        for c in &vertex.iri_constraints {
            let ok = match c.direction {
                Direction::Incoming => graph.has_multi_edge(c.data_vertex, v, c.types.types()),
                Direction::Outgoing => graph.has_multi_edge(v, c.data_vertex, c.types.types()),
            };
            if !ok {
                return false;
            }
        }
        if let Some(types) = &vertex.self_loop {
            if !graph.has_multi_edge(v, v, types.types()) {
                return false;
            }
        }
        true
    }

    /// Order all variable vertices: highest degree first, then connected
    /// expansion (the standard backtracking heuristic, no satellites).
    fn order_vertices(qg: &QueryGraph) -> Vec<QVertexId> {
        let mut remaining: Vec<QVertexId> = qg.vertex_ids().collect();
        let mut order: Vec<QVertexId> = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let connected: Vec<QVertexId> = remaining
                .iter()
                .copied()
                .filter(|&u| qg.adjacency(u).iter().any(|a| order.contains(&a.neighbor)))
                .collect();
            let pool = if order.is_empty() || connected.is_empty() {
                &remaining
            } else {
                &connected
            };
            let next = *pool
                .iter()
                .max_by_key(|&&u| (qg.degree(u), std::cmp::Reverse(u)))
                .expect("pool is non-empty");
            remaining.retain(|&u| u != next);
            order.push(next);
        }
        order
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        qg: &QueryGraph,
        order: &[QVertexId],
        depth: usize,
        assignment: &mut Vec<u32>,
        collector: &mut RowCollector,
        deadline: &Deadline,
        timed_out: &mut bool,
    ) {
        if *timed_out || deadline.exceeded() {
            *timed_out = true;
            return;
        }
        let Some(&u) = order.get(depth) else {
            collector.record(assignment);
            return;
        };
        let graph = self.rdf.graph();

        // Candidates from already-matched neighbours (adjacency scans), or a
        // full vertex scan when none is matched yet.
        let candidates = self.candidates_for(qg, graph, u, assignment);
        for v in candidates {
            if !self.local_ok(qg, u, v) {
                continue;
            }
            if !self.edges_to_matched_ok(qg, graph, u, v, assignment) {
                continue;
            }
            assignment[u.index()] = v.0;
            self.recurse(
                qg,
                order,
                depth + 1,
                assignment,
                collector,
                deadline,
                timed_out,
            );
            if *timed_out {
                return;
            }
        }
        assignment[u.index()] = UNBOUND;
    }

    /// A candidate pool for `u`: neighbours of one matched neighbour (the
    /// one with the smallest adjacency, scanned directly), or all vertices.
    fn candidates_for(
        &self,
        qg: &QueryGraph,
        graph: &DataGraph,
        u: QVertexId,
        assignment: &[u32],
    ) -> Vec<VertexId> {
        let mut best: Option<Vec<VertexId>> = None;
        for adj in qg.adjacency(u) {
            let matched = assignment[adj.neighbor.index()];
            if matched == UNBOUND {
                continue;
            }
            let types = qg.edges()[adj.edge].types.types();
            // Edge direction relative to u: Incoming means neighbour → u, so
            // u's candidates are out-neighbours of the matched vertex.
            let scan_dir = adj.direction.flip();
            let pool: Vec<VertexId> = graph
                .edges(VertexId(matched), scan_dir)
                .iter()
                .filter(|e| e.types.contains_all(types))
                .map(|e| e.neighbor)
                .collect();
            if best.as_ref().is_none_or(|b| pool.len() < b.len()) {
                best = Some(pool);
            }
        }
        best.unwrap_or_else(|| graph.vertices().collect())
    }

    /// Verify every edge between `u` and already-matched vertices.
    fn edges_to_matched_ok(
        &self,
        qg: &QueryGraph,
        graph: &DataGraph,
        u: QVertexId,
        v: VertexId,
        assignment: &[u32],
    ) -> bool {
        for adj in qg.adjacency(u) {
            let matched = assignment[adj.neighbor.index()];
            if matched == UNBOUND {
                continue;
            }
            let types = qg.edges()[adj.edge].types.types();
            let ok = match adj.direction {
                // Incoming relative to u: edge neighbour → u.
                Direction::Incoming => graph.has_multi_edge(VertexId(matched), v, types),
                Direction::Outgoing => graph.has_multi_edge(v, VertexId(matched), types),
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn ground_checks_pass(&self, qg: &QueryGraph) -> bool {
        let graph = self.rdf.graph();
        qg.ground_checks().iter().all(|check| match check {
            GroundCheck::Edge { from, to, types } => {
                graph.has_multi_edge(*from, *to, types.types())
            }
            GroundCheck::Attribute { vertex, attrs } => graph.has_attributes(*vertex, attrs),
        })
    }
}

impl SparqlEngine for BacktrackingEngine {
    fn name(&self) -> &'static str {
        "Backtracking"
    }

    fn execute_query(
        &self,
        query: &amber_sparql::SelectQuery,
        options: &ExecOptions,
    ) -> Result<QueryOutcome, EngineError> {
        let sw = Stopwatch::start();
        let qg = QueryGraph::build(query, &self.rdf)?;
        let variables: Vec<Box<str>> = qg.output_vars().to_vec();
        if qg.is_unsatisfiable() || !self.ground_checks_pass(&qg) {
            return Ok(QueryOutcome::empty(variables, sw.elapsed()));
        }

        let output_slots: Vec<usize> = qg
            .output_vars()
            .iter()
            .map(|name| {
                qg.vertex_by_name(name)
                    .expect("validated projection")
                    .index()
            })
            .collect();
        let mut collector = RowCollector::new(
            output_slots,
            options.max_results,
            qg.distinct(),
            options.count_only,
        );

        let order = Self::order_vertices(&qg);
        let deadline = Deadline::new(options.timeout);
        let mut assignment = vec![UNBOUND; qg.vertex_count()];
        let mut timed_out = false;
        self.recurse(
            &qg,
            &order,
            0,
            &mut assignment,
            &mut collector,
            &deadline,
            &mut timed_out,
        );
        Ok(collector.into_outcome(variables, timed_out, sw.elapsed(), &self.rdf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::paper::{paper_graph, paper_query_text, PREFIX_X, PREFIX_Y};

    fn engine() -> BacktrackingEngine {
        BacktrackingEngine::new(Arc::new(paper_graph()))
    }

    #[test]
    fn paper_query_counts_two() {
        let out = engine()
            .execute_sparql(&paper_query_text(), &ExecOptions::new())
            .unwrap();
        assert_eq!(out.embedding_count, 2);
        assert_eq!(out.bindings.len(), 2);
    }

    #[test]
    fn ordering_starts_at_max_degree() {
        let rdf = paper_graph();
        let qg = QueryGraph::build(
            &amber_sparql::parse_select(&paper_query_text()).unwrap(),
            &rdf,
        )
        .unwrap();
        let order = BacktrackingEngine::order_vertices(&qg);
        assert_eq!(qg.vertex(order[0]).name.as_ref(), "X1"); // degree 5
        assert_eq!(order.len(), 7);
    }

    #[test]
    fn homomorphism_allows_repeated_data_vertices() {
        // ?a wasBornIn ?c . ?b wasBornIn ?c — (Amy,Amy), (Amy,Nolan),
        // (Nolan,Amy), (Nolan,Nolan): 4 embeddings, no injectivity.
        let q = format!(
            "SELECT * WHERE {{ ?a <{PREFIX_Y}wasBornIn> ?c . ?b <{PREFIX_Y}wasBornIn> ?c . }}"
        );
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 4);
    }

    #[test]
    fn iri_constraint_only_query() {
        let q = format!("SELECT ?p WHERE {{ ?p <{PREFIX_Y}livedIn> <{PREFIX_X}United_States> . }}");
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 2);
    }

    #[test]
    fn timeout_is_reported() {
        let out = engine()
            .execute_sparql(
                &paper_query_text(),
                &ExecOptions::new().with_timeout(std::time::Duration::ZERO),
            )
            .unwrap();
        assert!(out.timed_out());
    }
}
