//! The relational triple-store baseline (x-RDF-3X / Virtuoso stand-in).
//!
//! Architecture reproduced from the paper's description of the competitors
//! (§6): RDF triples in one big ID-encoded three-column table, *exhaustively
//! indexed* — all six sort permutations (SPO, SOP, PSO, POS, OSP, OPS) are
//! materialized as sorted arrays, so any bound-position combination resolves
//! to a binary-search range scan. Query evaluation picks a greedy join
//! order from range-size selectivity estimates (the "statistics over the
//! data" of x-RDF-3X) and pipelines index nested-loop joins depth-first.
//!
//! Literal-object triples live in a separate `(attribute, vertex)` table,
//! mirroring the dictionary-compressed string handling of the real systems
//! and keeping the semantics aligned with the multigraph model (see the
//! crate docs).

use crate::common::{RowCollector, UNBOUND};
use amber::{EngineError, ExecOptions, QueryOutcome, SparqlEngine};
use amber_multigraph::RdfGraph;
use amber_sparql::{SelectQuery, TermPattern};
use amber_util::{Deadline, FxHashMap, Stopwatch};
use std::sync::Arc;

/// Column orders of the six permutations.
const PERMUTATIONS: [[usize; 3]; 6] = [
    [0, 1, 2], // SPO
    [0, 2, 1], // SOP
    [1, 0, 2], // PSO
    [1, 2, 0], // POS
    [2, 0, 1], // OSP
    [2, 1, 0], // OPS
];

/// Index into [`PERMUTATIONS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Perm {
    Spo = 0,
    Pso = 2,
    Pos = 3,
}

/// A slot of an ID pattern: variable (by slot index) or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Var(usize),
    Const(u32),
}

impl Slot {
    fn value(self, assignment: &[u32]) -> Option<u32> {
        match self {
            Slot::Const(c) => Some(c),
            Slot::Var(i) => {
                let v = assignment[i];
                (v != UNBOUND).then_some(v)
            }
        }
    }
}

/// One compiled triple pattern.
#[derive(Debug, Clone)]
enum IdPattern {
    /// Resource triple pattern; the predicate is always a constant id.
    Edge { s: Slot, p: u32, o: Slot },
    /// Attribute pattern (`?s <p> "lit"` folded through `Ma`).
    Attr { s: Slot, attr: u32 },
}

/// The six-permutation triple store.
pub struct TripleStoreEngine {
    rdf: Arc<RdfGraph>,
    /// Six copies of the resource triples, each stored *in permuted column
    /// order* and sorted lexicographically.
    perms: [Vec<[u32; 3]>; 6],
    /// `(attr, vertex)` sorted — scan by attribute.
    attr_by_attr: Vec<[u32; 2]>,
    /// `(vertex, attr)` sorted — existence checks.
    attr_by_vertex: Vec<[u32; 2]>,
}

impl TripleStoreEngine {
    /// Build the exhaustive permutation indexes from a loaded graph.
    pub fn new(rdf: Arc<RdfGraph>) -> Self {
        let graph = rdf.graph();
        let mut base: Vec<[u32; 3]> = Vec::with_capacity(graph.edge_instance_count());
        for v in graph.vertices() {
            for entry in graph.out_edges(v) {
                for &t in entry.types.types() {
                    base.push([v.0, t.0, entry.neighbor.0]);
                }
            }
        }
        let perms = PERMUTATIONS.map(|order| {
            let mut rows: Vec<[u32; 3]> = base
                .iter()
                .map(|t| [t[order[0]], t[order[1]], t[order[2]]])
                .collect();
            rows.sort_unstable();
            rows
        });
        let mut attr_by_attr: Vec<[u32; 2]> = Vec::new();
        for v in graph.vertices() {
            for &a in graph.attributes(v) {
                attr_by_attr.push([a.0, v.0]);
            }
        }
        attr_by_attr.sort_unstable();
        let mut attr_by_vertex: Vec<[u32; 2]> = attr_by_attr.iter().map(|p| [p[1], p[0]]).collect();
        attr_by_vertex.sort_unstable();
        Self {
            rdf,
            perms,
            attr_by_attr,
            attr_by_vertex,
        }
    }

    /// Total triples in the base table (diagnostics).
    pub fn triple_count(&self) -> usize {
        self.perms[0].len()
    }

    /// Range of rows in permutation `perm` matching the bound prefix.
    fn range(&self, perm: Perm, prefix: &[u32]) -> &[[u32; 3]] {
        let rows = &self.perms[perm as usize];
        let lo = rows.partition_point(|r| r[..prefix.len()] < *prefix);
        let hi = rows.partition_point(|r| r[..prefix.len()] <= *prefix);
        &rows[lo..hi]
    }

    /// Cardinality estimate for a pattern given which slots are bound.
    fn estimate(&self, pattern: &IdPattern, bound: &[bool]) -> usize {
        let is_bound = |slot: &Slot| match slot {
            Slot::Const(_) => true,
            Slot::Var(i) => bound[*i],
        };
        match pattern {
            IdPattern::Edge { s, p, o } => {
                // Base: range of the predicate (always known exactly).
                let base = self.range(Perm::Pso, &[*p]).len();
                // Every additionally bound position is assumed to cut the
                // range by a constant factor (a classic textbook estimate).
                let mut est = base;
                if is_bound(s) {
                    est /= 20;
                }
                if is_bound(o) {
                    est /= 20;
                }
                est.max(1)
            }
            IdPattern::Attr { s, attr } => {
                let lo = self.attr_by_attr.partition_point(|r| r[0] < *attr);
                let hi = self.attr_by_attr.partition_point(|r| r[0] <= *attr);
                let base = hi - lo;
                if is_bound(s) {
                    (base / 20).max(1)
                } else {
                    base.max(1)
                }
            }
        }
    }

    /// Greedy join order: repeatedly pick the cheapest remaining pattern
    /// under the current bound-variable set, preferring connected patterns.
    fn plan(&self, patterns: &[IdPattern], var_count: usize) -> Vec<usize> {
        let mut bound = vec![false; var_count];
        let mut remaining: Vec<usize> = (0..patterns.len()).collect();
        let mut order = Vec::with_capacity(patterns.len());
        while !remaining.is_empty() {
            let connected =
                |idx: usize| -> bool { pattern_vars(&patterns[idx]).iter().any(|&v| bound[v]) };
            let any_connected = order.is_empty() || remaining.iter().any(|&i| connected(i));
            let (pos, &best) = remaining
                .iter()
                .enumerate()
                .filter(|(_, &i)| !any_connected || order.is_empty() || connected(i))
                .min_by_key(|(_, &i)| self.estimate(&patterns[i], &bound))
                .expect("remaining is non-empty");
            let _ = pos;
            remaining.retain(|&i| i != best);
            for v in pattern_vars(&patterns[best]) {
                bound[v] = true;
            }
            order.push(best);
        }
        order
    }

    /// Depth-first index-nested-loop evaluation.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        patterns: &[IdPattern],
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<u32>,
        collector: &mut RowCollector,
        deadline: &Deadline,
        timed_out: &mut bool,
    ) {
        if *timed_out || deadline.exceeded() {
            *timed_out = true;
            return;
        }
        let Some(&idx) = order.get(depth) else {
            collector.record(assignment);
            return;
        };
        match &patterns[idx] {
            IdPattern::Edge { s, p, o } => {
                let sv = s.value(assignment);
                let ov = o.value(assignment);
                match (sv, ov) {
                    (Some(sv), Some(ov)) => {
                        // Fully bound: existence probe in SPO.
                        if !self.range(Perm::Spo, &[sv, *p, ov]).is_empty() {
                            self.recurse(
                                patterns,
                                order,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                        }
                    }
                    (Some(sv), None) => {
                        let Slot::Var(oi) = *o else { unreachable!() };
                        for row in self.range(Perm::Pso, &[*p, sv]) {
                            assignment[oi] = row[2];
                            self.recurse(
                                patterns,
                                order,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                            if *timed_out {
                                return;
                            }
                        }
                        assignment[oi] = UNBOUND;
                    }
                    (None, Some(ov)) => {
                        let Slot::Var(si) = *s else { unreachable!() };
                        for row in self.range(Perm::Pos, &[*p, ov]) {
                            assignment[si] = row[2];
                            self.recurse(
                                patterns,
                                order,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                            if *timed_out {
                                return;
                            }
                        }
                        assignment[si] = UNBOUND;
                    }
                    (None, None) => {
                        let (Slot::Var(si), Slot::Var(oi)) = (*s, *o) else {
                            unreachable!()
                        };
                        if si == oi {
                            // `?x p ?x`: scan the predicate, keep loops.
                            for row in self.range(Perm::Pso, &[*p]) {
                                if row[1] != row[2] {
                                    continue;
                                }
                                assignment[si] = row[1];
                                self.recurse(
                                    patterns,
                                    order,
                                    depth + 1,
                                    assignment,
                                    collector,
                                    deadline,
                                    timed_out,
                                );
                                if *timed_out {
                                    return;
                                }
                            }
                            assignment[si] = UNBOUND;
                        } else {
                            for row in self.range(Perm::Pso, &[*p]) {
                                assignment[si] = row[1];
                                assignment[oi] = row[2];
                                self.recurse(
                                    patterns,
                                    order,
                                    depth + 1,
                                    assignment,
                                    collector,
                                    deadline,
                                    timed_out,
                                );
                                if *timed_out {
                                    return;
                                }
                            }
                            assignment[si] = UNBOUND;
                            assignment[oi] = UNBOUND;
                        }
                    }
                }
            }
            IdPattern::Attr { s, attr } => match s.value(assignment) {
                Some(sv) => {
                    if self.attr_by_vertex.binary_search(&[sv, *attr]).is_ok() {
                        self.recurse(
                            patterns,
                            order,
                            depth + 1,
                            assignment,
                            collector,
                            deadline,
                            timed_out,
                        );
                    }
                }
                None => {
                    let Slot::Var(si) = *s else { unreachable!() };
                    let lo = self.attr_by_attr.partition_point(|r| r[0] < *attr);
                    let hi = self.attr_by_attr.partition_point(|r| r[0] <= *attr);
                    for row in &self.attr_by_attr[lo..hi] {
                        assignment[si] = row[1];
                        self.recurse(
                            patterns,
                            order,
                            depth + 1,
                            assignment,
                            collector,
                            deadline,
                            timed_out,
                        );
                        if *timed_out {
                            return;
                        }
                    }
                    assignment[si] = UNBOUND;
                }
            },
        }
    }
}

fn pattern_vars(pattern: &IdPattern) -> Vec<usize> {
    let mut vars = Vec::new();
    let mut push = |slot: &Slot| {
        if let Slot::Var(i) = slot {
            vars.push(*i);
        }
    };
    match pattern {
        IdPattern::Edge { s, o, .. } => {
            push(s);
            push(o);
        }
        IdPattern::Attr { s, .. } => push(s),
    }
    vars
}

/// Compilation result: patterns + variable table, or proof of emptiness.
enum Compiled {
    Patterns {
        patterns: Vec<IdPattern>,
        variables: Vec<Box<str>>,
    },
    /// Some constant is absent from the dictionaries, or a ground pattern
    /// is false: zero answers.
    Empty,
}

impl TripleStoreEngine {
    fn compile(&self, query: &SelectQuery) -> Result<Compiled, EngineError> {
        let mut variables: Vec<Box<str>> = Vec::new();
        let var_slot = |name: &str, variables: &mut Vec<Box<str>>| -> usize {
            match variables.iter().position(|v| v.as_ref() == name) {
                Some(i) => i,
                None => {
                    variables.push(name.into());
                    variables.len() - 1
                }
            }
        };
        let mut patterns = Vec::with_capacity(query.patterns.len());
        for p in &query.patterns {
            let pred = match &p.predicate {
                TermPattern::Iri(iri) => iri,
                TermPattern::Variable(v) => {
                    return Err(EngineError::QueryGraph(
                        amber_multigraph::query_graph::QueryGraphError::VariablePredicate(
                            v.clone(),
                        ),
                    ))
                }
                TermPattern::Literal(_) => {
                    return Err(EngineError::QueryGraph(
                        amber_multigraph::query_graph::QueryGraphError::LiteralPredicate,
                    ))
                }
            };
            let subject = match &p.subject {
                TermPattern::Variable(v) => Slot::Var(var_slot(v, &mut variables)),
                TermPattern::Iri(iri) => match self.rdf.vertex_by_key(iri) {
                    Some(v) => Slot::Const(v.0),
                    None => return Ok(Compiled::Empty),
                },
                TermPattern::Literal(_) => {
                    return Err(EngineError::QueryGraph(
                        amber_multigraph::query_graph::QueryGraphError::LiteralSubject,
                    ))
                }
            };
            match &p.object {
                TermPattern::Literal(lit) => {
                    let Some(attr) = self.rdf.dictionaries().attribute(pred, lit) else {
                        return Ok(Compiled::Empty);
                    };
                    patterns.push(IdPattern::Attr {
                        s: subject,
                        attr: attr.0,
                    });
                }
                object => {
                    let Some(pid) = self.rdf.edge_type_by_iri(pred) else {
                        return Ok(Compiled::Empty);
                    };
                    let object = match object {
                        TermPattern::Variable(v) => Slot::Var(var_slot(v, &mut variables)),
                        TermPattern::Iri(iri) => match self.rdf.vertex_by_key(iri) {
                            Some(v) => Slot::Const(v.0),
                            None => return Ok(Compiled::Empty),
                        },
                        TermPattern::Literal(_) => unreachable!("matched above"),
                    };
                    patterns.push(IdPattern::Edge {
                        s: subject,
                        p: pid.0,
                        o: object,
                    });
                }
            }
        }
        Ok(Compiled::Patterns {
            patterns,
            variables,
        })
    }
}

impl SparqlEngine for TripleStoreEngine {
    fn name(&self) -> &'static str {
        "TripleStore"
    }

    fn execute_query(
        &self,
        query: &SelectQuery,
        options: &ExecOptions,
    ) -> Result<QueryOutcome, EngineError> {
        let sw = Stopwatch::start();
        let output_vars: Vec<Box<str>> = query
            .output_variables()
            .into_iter()
            .map(Into::into)
            .collect();

        let (patterns, variables) = match self.compile(query)? {
            Compiled::Empty => {
                return Ok(QueryOutcome::empty(output_vars, sw.elapsed()));
            }
            Compiled::Patterns {
                patterns,
                variables,
            } => (patterns, variables),
        };

        let order = self.plan(&patterns, variables.len());
        let slot_of: FxHashMap<&str, usize> = variables
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_ref(), i))
            .collect();
        let output_slots: Vec<usize> = output_vars
            .iter()
            .map(|v| *slot_of.get(v.as_ref()).expect("projection validated"))
            .collect();

        let mut collector = RowCollector::new(
            output_slots,
            options.max_results,
            query.distinct,
            options.count_only,
        );
        let deadline = Deadline::new(options.timeout);
        let mut assignment = vec![UNBOUND; variables.len()];
        let mut timed_out = false;
        self.recurse(
            &patterns,
            &order,
            0,
            &mut assignment,
            &mut collector,
            &deadline,
            &mut timed_out,
        );
        Ok(collector.into_outcome(output_vars, timed_out, sw.elapsed(), &self.rdf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::paper::{paper_graph, paper_query_text, PREFIX_X, PREFIX_Y};

    fn engine() -> TripleStoreEngine {
        TripleStoreEngine::new(Arc::new(paper_graph()))
    }

    #[test]
    fn permutations_hold_all_resource_triples() {
        let e = engine();
        assert_eq!(e.triple_count(), 13); // 16 triples − 3 literal triples
        for perm in &e.perms {
            assert_eq!(perm.len(), 13);
            assert!(perm.windows(2).all(|w| w[0] <= w[1]), "sorted");
        }
    }

    #[test]
    fn paper_query_counts_two() {
        let out = engine()
            .execute_sparql(&paper_query_text(), &ExecOptions::new())
            .unwrap();
        assert_eq!(out.embedding_count, 2);
    }

    #[test]
    fn range_scans() {
        let e = engine();
        // livedIn = t3 has 3 instances (Nolan→England, Amy→US, Blake→US).
        assert_eq!(e.range(Perm::Pso, &[3]).len(), 3);
        // (p=livedIn, o=United_States) = 2.
        assert_eq!(e.range(Perm::Pos, &[3, 5]).len(), 2);
    }

    #[test]
    fn bound_subject_query() {
        let q = format!("SELECT ?x WHERE {{ <{PREFIX_X}Amy_Winehouse> <{PREFIX_Y}livedIn> ?x . }}");
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 1);
        assert_eq!(
            out.bindings[0][0].as_ref(),
            format!("{PREFIX_X}United_States")
        );
    }

    #[test]
    fn attribute_pattern() {
        let q = format!("SELECT ?b WHERE {{ ?b <{PREFIX_Y}hasName> \"MCA_Band\" . }}");
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 1);
        assert_eq!(out.bindings[0][0].as_ref(), format!("{PREFIX_X}Music_Band"));
    }

    #[test]
    fn unknown_constants_yield_empty() {
        let out = engine()
            .execute_sparql(
                "SELECT * WHERE { ?a <http://nope/p> ?b . }",
                &ExecOptions::new(),
            )
            .unwrap();
        assert_eq!(out.embedding_count, 0);
    }

    #[test]
    fn ground_pattern_filters() {
        let good = format!(
            "SELECT ?p WHERE {{ <{PREFIX_X}London> <{PREFIX_Y}isPartOf> <{PREFIX_X}England> . \
             ?p <{PREFIX_Y}wasBornIn> <{PREFIX_X}London> . }}"
        );
        assert_eq!(
            engine()
                .execute_sparql(&good, &ExecOptions::new())
                .unwrap()
                .embedding_count,
            2
        );
        let bad = format!(
            "SELECT ?p WHERE {{ <{PREFIX_X}England> <{PREFIX_Y}isPartOf> <{PREFIX_X}London> . \
             ?p <{PREFIX_Y}wasBornIn> <{PREFIX_X}London> . }}"
        );
        assert_eq!(
            engine()
                .execute_sparql(&bad, &ExecOptions::new())
                .unwrap()
                .embedding_count,
            0
        );
    }

    #[test]
    fn plan_starts_with_most_selective() {
        let e = engine();
        // hasName "MCA_Band" (1 row) should be planned before wasBornIn (2 rows)
        // and livedIn (3 rows).
        let query = amber_sparql::parse_select(&format!(
            "SELECT * WHERE {{ ?p <{PREFIX_Y}livedIn> ?x . ?b <{PREFIX_Y}hasName> \"MCA_Band\" . }}"
        ))
        .unwrap();
        let Compiled::Patterns {
            patterns,
            variables,
        } = e.compile(&query).unwrap()
        else {
            panic!("compiles");
        };
        let order = e.plan(&patterns, variables.len());
        assert!(matches!(patterns[order[0]], IdPattern::Attr { .. }));
    }
}
