#![warn(missing_docs)]
//! Baseline SPARQL engines — the paper's competitors, re-implemented.
//!
//! The evaluation (§7) compares AMbER against Virtuoso, x-RDF-3X, Apache
//! Jena and gStore (TurboHom++ was unavailable to the authors too). None of
//! those binaries exist in this environment, so each *architecture* is
//! re-implemented over the same data model:
//!
//! * [`ScanJoinEngine`] — per-pattern full scans plus hash joins, no indexes
//!   and no planning. The slow sanity oracle; fills Jena's role (slowest
//!   engine in every figure) and doubles as the correctness reference in
//!   the cross-engine agreement tests.
//! * [`TripleStoreEngine`] — ID-encoded triples in all six sort permutations
//!   (SPO…OPS) with binary-search range scans and greedy selectivity-ordered
//!   index-nested-loop joins: the relational architecture of x-RDF-3X /
//!   Virtuoso.
//! * [`BacktrackingEngine`] — homomorphic backtracking over the raw
//!   adjacency of the very same multigraph, but with **none** of AMbER's
//!   `A`/`S`/`N` indexes and **no** core–satellite decomposition: the
//!   graph-store architecture (gStore / TurboHom++), isolating exactly the
//!   contribution under test.
//!
//! **Semantics alignment.** All engines evaluate the multigraph semantics of
//! §2.3 (variables range over resource vertices; constant-literal objects
//! are attribute constraints). This keeps every engine's answer count
//! identical on every query — which the agreement tests assert — so the
//! benchmark measures *architecture*, not semantic drift.

pub mod backtracking;
mod common;
pub mod scan_join;
pub mod triple_store;

pub use backtracking::BacktrackingEngine;
pub use scan_join::ScanJoinEngine;
pub use triple_store::TripleStoreEngine;

use amber::{EngineError, ExecOptions, QueryOutcome, SparqlEngine};
use amber_multigraph::RdfGraph;
use std::sync::Arc;

/// Every engine in the workspace, instantiated over one shared graph —
/// convenience for the harness and the agreement tests. AMbER itself is
/// element 0.
pub fn all_engines(rdf: Arc<RdfGraph>) -> Vec<Box<dyn SparqlEngine + Send + Sync>> {
    vec![
        Box::new(amber::AmberEngine::from_graph(Arc::clone(&rdf))),
        Box::new(TripleStoreEngine::new(Arc::clone(&rdf))),
        Box::new(BacktrackingEngine::new(Arc::clone(&rdf))),
        Box::new(ScanJoinEngine::new(rdf)),
    ]
}

/// Execute a query on every engine and assert they agree on the embedding
/// count (test helper; panics on disagreement).
pub fn assert_engines_agree(rdf: Arc<RdfGraph>, sparql: &str) -> u128 {
    let options = ExecOptions::new();
    let engines = all_engines(rdf);
    let mut counts: Vec<(String, Result<QueryOutcome, EngineError>)> = Vec::new();
    for engine in &engines {
        counts.push((
            engine.name().to_string(),
            engine.execute_sparql(sparql, &options),
        ));
    }
    let reference = counts[0]
        .1
        .as_ref()
        .unwrap_or_else(|e| panic!("{} failed: {e}", counts[0].0))
        .embedding_count;
    for (name, outcome) in &counts {
        let outcome = outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(
            outcome.embedding_count, reference,
            "engine {name} disagrees on {sparql}"
        );
    }
    reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::paper::{paper_graph, paper_query_text};

    #[test]
    fn all_engines_agree_on_paper_query() {
        let rdf = Arc::new(paper_graph());
        let count = assert_engines_agree(rdf, &paper_query_text());
        assert_eq!(count, 2);
    }

    #[test]
    fn engine_names_are_distinct() {
        let rdf = Arc::new(paper_graph());
        let engines = all_engines(rdf);
        let mut names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
