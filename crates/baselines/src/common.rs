//! Shared row collection / projection machinery for the baseline engines.

use amber::{QueryOutcome, QueryStatus};
use amber_multigraph::RdfGraph;
use amber_util::FxHashSet;
use std::time::Duration;

/// Collects complete assignments, counting all of them (bag semantics, like
/// AMbER's embedding count) while materializing at most `max` projected rows
/// (deduplicated under DISTINCT).
pub(crate) struct RowCollector {
    /// Positions (slots in the assignment vector) of the output variables.
    output_slots: Vec<usize>,
    max: Option<usize>,
    distinct: bool,
    count_only: bool,
    count: u128,
    rows: Vec<Vec<u32>>,
    seen: FxHashSet<Vec<u32>>,
}

impl RowCollector {
    pub fn new(
        output_slots: Vec<usize>,
        max: Option<usize>,
        distinct: bool,
        count_only: bool,
    ) -> Self {
        Self {
            output_slots,
            max,
            distinct,
            count_only,
            count: 0,
            rows: Vec::new(),
            seen: FxHashSet::default(),
        }
    }

    /// Record one complete assignment (slot → vertex id).
    pub fn record(&mut self, assignment: &[u32]) {
        self.count = self.count.saturating_add(1);
        if self.count_only {
            return;
        }
        if self.max.is_some_and(|m| self.rows.len() >= m) {
            return;
        }
        let projected: Vec<u32> = self.output_slots.iter().map(|&s| assignment[s]).collect();
        if self.distinct && !self.seen.insert(projected.clone()) {
            return;
        }
        self.rows.push(projected);
    }

    /// Total assignments recorded so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn count(&self) -> u128 {
        self.count
    }

    /// Assemble the final outcome, resolving vertex ids through `Mv⁻¹`.
    pub fn into_outcome(
        self,
        variables: Vec<Box<str>>,
        timed_out: bool,
        elapsed: Duration,
        rdf: &RdfGraph,
    ) -> QueryOutcome {
        let bindings = self
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|v| rdf.vertex_name(amber_multigraph::VertexId(v)).into())
                    .collect()
            })
            .collect();
        QueryOutcome {
            status: if timed_out {
                QueryStatus::TimedOut
            } else {
                QueryStatus::Completed
            },
            embedding_count: self.count,
            variables,
            bindings,
            elapsed,
        }
    }
}

/// Sentinel for an unbound slot.
pub(crate) const UNBOUND: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::paper::paper_graph;

    #[test]
    fn counts_all_but_caps_rows() {
        let mut c = RowCollector::new(vec![0], Some(2), false, false);
        for v in 0..5 {
            c.record(&[v, 99]);
        }
        assert_eq!(c.count(), 5);
        let rdf = paper_graph();
        let out = c.into_outcome(vec!["x".into()], false, Duration::ZERO, &rdf);
        assert_eq!(out.embedding_count, 5);
        assert_eq!(out.bindings.len(), 2);
    }

    #[test]
    fn distinct_dedups_projection() {
        let mut c = RowCollector::new(vec![1], None, true, false);
        c.record(&[0, 7]);
        c.record(&[1, 7]); // same projection
        c.record(&[2, 8]);
        assert_eq!(c.count(), 3);
        let rdf = paper_graph();
        let out = c.into_outcome(vec!["x".into()], false, Duration::ZERO, &rdf);
        assert_eq!(out.bindings.len(), 2);
    }

    #[test]
    fn count_only_materializes_nothing() {
        let mut c = RowCollector::new(vec![0], None, false, true);
        c.record(&[3]);
        let rdf = paper_graph();
        let out = c.into_outcome(vec!["x".into()], false, Duration::ZERO, &rdf);
        assert_eq!(out.embedding_count, 1);
        assert!(out.bindings.is_empty());
    }
}
