//! The scan-join baseline: no indexes, (almost) no planning.
//!
//! Evaluates the query multigraph constraint by constraint, extending
//! partial assignments depth-first. Every edge constraint triggers a scan
//! of the *entire* edge list (restricted only by already bound endpoints
//! through the raw adjacency). This is deliberately the weakest
//! architecture in the line-up — the role Apache Jena plays in the paper's
//! figures — and doubles as the correctness oracle for the cross-engine
//! agreement tests because its code path is trivially auditable.
//!
//! The only concession to ordering is a **static constant-first step
//! reorder** ([`steps_of`]): IRI-constraint steps run before edge scans
//! (each is a single adjacency walk from a *constant* data vertex, binding
//! its variable immediately), and edge steps chain greedily off
//! already-touched variables. There is still no cost model, no statistics
//! and no per-query search — just one pass over the step list — but it
//! stops the engine from discovering a constant-heavy query's selectivity
//! last and blowing its budget on full edge scans, which is what kept it
//! out of the heavy-constant agreement tests as an oracle.

use crate::common::{RowCollector, UNBOUND};
use amber::{EngineError, ExecOptions, QueryOutcome, SparqlEngine};
use amber_multigraph::{
    Direction, GroundCheck, MultiEdge, QVertexId, QueryGraph, RdfGraph, VertexId,
};
use amber_util::{Deadline, Stopwatch};
use std::sync::Arc;

/// One evaluation step over the partial assignment.
#[derive(Debug)]
enum Step {
    /// A variable-variable edge `from → to` with required types.
    Edge {
        from: QVertexId,
        to: QVertexId,
        types: MultiEdge,
    },
    /// Attribute constraint on a variable.
    Attrs { vertex: QVertexId },
    /// IRI constraint on a variable.
    Iri {
        vertex: QVertexId,
        constraint: usize,
    },
    /// Self loop on a variable.
    SelfLoop { vertex: QVertexId },
}

/// The naive scan + join engine.
pub struct ScanJoinEngine {
    rdf: Arc<RdfGraph>,
}

impl ScanJoinEngine {
    /// Wrap a loaded graph (no auxiliary structures are built — that is the
    /// point of this baseline).
    pub fn new(rdf: Arc<RdfGraph>) -> Self {
        Self { rdf }
    }

    fn ground_checks_pass(&self, qg: &QueryGraph) -> bool {
        let graph = self.rdf.graph();
        qg.ground_checks().iter().all(|check| match check {
            GroundCheck::Edge { from, to, types } => {
                graph.has_multi_edge(*from, *to, types.types())
            }
            GroundCheck::Attribute { vertex, attrs } => graph.has_attributes(*vertex, attrs),
        })
    }

    /// Depth-first constraint evaluation.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        qg: &QueryGraph,
        steps: &[Step],
        depth: usize,
        assignment: &mut Vec<u32>,
        collector: &mut RowCollector,
        deadline: &Deadline,
        timed_out: &mut bool,
    ) {
        if *timed_out || deadline.exceeded() {
            *timed_out = true;
            return;
        }
        let Some(step) = steps.get(depth) else {
            collector.record(assignment);
            return;
        };
        let graph = self.rdf.graph();
        match step {
            Step::Edge { from, to, types } => {
                let (bf, bt) = (assignment[from.index()], assignment[to.index()]);
                match (bf, bt) {
                    (UNBOUND, UNBOUND) => {
                        // Full scan of every directed pair.
                        for v in graph.vertices() {
                            for entry in graph.out_edges(v) {
                                if *timed_out || deadline.exceeded() {
                                    *timed_out = true;
                                    return;
                                }
                                if !entry.types.contains_all(types.types()) {
                                    continue;
                                }
                                // A self-directed data edge can match a
                                // from≠to query edge (homomorphism), but the
                                // two slots must then hold the same vertex —
                                // which the assignment naturally records.
                                assignment[from.index()] = v.0;
                                assignment[to.index()] = entry.neighbor.0;
                                self.recurse(
                                    qg,
                                    steps,
                                    depth + 1,
                                    assignment,
                                    collector,
                                    deadline,
                                    timed_out,
                                );
                            }
                        }
                        assignment[from.index()] = UNBOUND;
                        assignment[to.index()] = UNBOUND;
                    }
                    (v, UNBOUND) if v != UNBOUND => {
                        for entry in graph.out_edges(VertexId(v)) {
                            if !entry.types.contains_all(types.types()) {
                                continue;
                            }
                            assignment[to.index()] = entry.neighbor.0;
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                            if *timed_out {
                                return;
                            }
                        }
                        assignment[to.index()] = UNBOUND;
                    }
                    (UNBOUND, v) => {
                        for entry in graph.in_edges(VertexId(v)) {
                            if !entry.types.contains_all(types.types()) {
                                continue;
                            }
                            assignment[from.index()] = entry.neighbor.0;
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                            if *timed_out {
                                return;
                            }
                        }
                        assignment[from.index()] = UNBOUND;
                    }
                    (vf, vt) => {
                        if graph.has_multi_edge(VertexId(vf), VertexId(vt), types.types()) {
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                        }
                    }
                }
            }
            Step::Attrs { vertex } => {
                let attrs = &qg.vertex(*vertex).attrs;
                match assignment[vertex.index()] {
                    UNBOUND => {
                        // Full vertex scan.
                        for v in graph.vertices() {
                            if *timed_out || deadline.exceeded() {
                                *timed_out = true;
                                return;
                            }
                            if graph.has_attributes(v, attrs) {
                                assignment[vertex.index()] = v.0;
                                self.recurse(
                                    qg,
                                    steps,
                                    depth + 1,
                                    assignment,
                                    collector,
                                    deadline,
                                    timed_out,
                                );
                            }
                        }
                        assignment[vertex.index()] = UNBOUND;
                    }
                    v => {
                        if graph.has_attributes(VertexId(v), attrs) {
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                        }
                    }
                }
            }
            Step::Iri { vertex, constraint } => {
                let c = &qg.vertex(*vertex).iri_constraints[*constraint];
                match assignment[vertex.index()] {
                    UNBOUND => {
                        // Scan the adjacency of the IRI's data vertex.
                        let dir = match c.direction {
                            // constraint Incoming = edge iri→var: candidates
                            // are out-neighbours of the IRI vertex.
                            Direction::Incoming => Direction::Outgoing,
                            Direction::Outgoing => Direction::Incoming,
                        };
                        for entry in graph.edges(c.data_vertex, dir) {
                            if !entry.types.contains_all(c.types.types()) {
                                continue;
                            }
                            assignment[vertex.index()] = entry.neighbor.0;
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                            if *timed_out {
                                return;
                            }
                        }
                        assignment[vertex.index()] = UNBOUND;
                    }
                    v => {
                        let ok = match c.direction {
                            Direction::Incoming => {
                                graph.has_multi_edge(c.data_vertex, VertexId(v), c.types.types())
                            }
                            Direction::Outgoing => {
                                graph.has_multi_edge(VertexId(v), c.data_vertex, c.types.types())
                            }
                        };
                        if ok {
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                        }
                    }
                }
            }
            Step::SelfLoop { vertex } => {
                let types = qg
                    .vertex(*vertex)
                    .self_loop
                    .as_ref()
                    .expect("self-loop step only for self-loop vertices");
                match assignment[vertex.index()] {
                    UNBOUND => {
                        for v in graph.vertices() {
                            if graph.has_multi_edge(v, v, types.types()) {
                                assignment[vertex.index()] = v.0;
                                self.recurse(
                                    qg,
                                    steps,
                                    depth + 1,
                                    assignment,
                                    collector,
                                    deadline,
                                    timed_out,
                                );
                                if *timed_out {
                                    return;
                                }
                            }
                        }
                        assignment[vertex.index()] = UNBOUND;
                    }
                    v => {
                        if graph.has_multi_edge(VertexId(v), VertexId(v), types.types()) {
                            self.recurse(
                                qg,
                                steps,
                                depth + 1,
                                assignment,
                                collector,
                                deadline,
                                timed_out,
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Build the step list with the constant-first static reorder:
///
/// 1. **IRI-constraint steps first** (most-constant patterns): each scans
///    the adjacency of one *constant* data vertex and binds its variable —
///    the cheapest, most selective step available without any index.
/// 2. **Edge steps greedily chained**: among the remaining edges, always
///    prefer (in declaration order) one with an endpoint already touched by
///    an earlier step, so scans run against a bound endpoint instead of the
///    full edge list whenever the query's shape allows it.
/// 3. **Attribute and self-loop steps last**, as before — by then their
///    variables are almost always bound, degrading them to O(1) filters.
///
/// Steps are commutative filters, so any order is semantically identical;
/// this one just front-loads selectivity. No cost model, no statistics —
/// still not a planner.
fn steps_of(qg: &QueryGraph) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut touched = vec![false; qg.vertex_count()];
    for u in qg.vertex_ids() {
        for (i, _) in qg.vertex(u).iri_constraints.iter().enumerate() {
            steps.push(Step::Iri {
                vertex: u,
                constraint: i,
            });
            touched[u.index()] = true;
        }
    }

    let mut remaining: Vec<&amber_multigraph::QueryEdge> = qg.edges().iter().collect();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|e| touched[e.from.index()] || touched[e.to.index()])
            .unwrap_or(0);
        let edge = remaining.remove(pick);
        touched[edge.from.index()] = true;
        touched[edge.to.index()] = true;
        steps.push(Step::Edge {
            from: edge.from,
            to: edge.to,
            types: edge.types.clone(),
        });
    }

    for u in qg.vertex_ids() {
        let vertex = qg.vertex(u);
        if !vertex.attrs.is_empty() {
            steps.push(Step::Attrs { vertex: u });
        }
        if vertex.self_loop.is_some() {
            steps.push(Step::SelfLoop { vertex: u });
        }
    }
    steps
}

impl SparqlEngine for ScanJoinEngine {
    fn name(&self) -> &'static str {
        "ScanJoin"
    }

    fn execute_query(
        &self,
        query: &amber_sparql::SelectQuery,
        options: &ExecOptions,
    ) -> Result<QueryOutcome, EngineError> {
        let sw = Stopwatch::start();
        let qg = QueryGraph::build(query, &self.rdf)?;
        let variables: Vec<Box<str>> = qg.output_vars().to_vec();
        if qg.is_unsatisfiable() || !self.ground_checks_pass(&qg) {
            return Ok(QueryOutcome::empty(variables, sw.elapsed()));
        }

        let output_slots: Vec<usize> = qg
            .output_vars()
            .iter()
            .map(|name| {
                qg.vertex_by_name(name)
                    .expect("validated projection")
                    .index()
            })
            .collect();
        let mut collector = RowCollector::new(
            output_slots,
            options.max_results,
            qg.distinct(),
            options.count_only,
        );

        let steps = steps_of(&qg);
        let deadline = Deadline::new(options.timeout);
        let mut assignment = vec![UNBOUND; qg.vertex_count()];
        let mut timed_out = false;
        self.recurse(
            &qg,
            &steps,
            0,
            &mut assignment,
            &mut collector,
            &deadline,
            &mut timed_out,
        );

        Ok(collector.into_outcome(variables, timed_out, sw.elapsed(), &self.rdf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::paper::{paper_graph, paper_query_text, PREFIX_X, PREFIX_Y};

    fn engine() -> ScanJoinEngine {
        ScanJoinEngine::new(Arc::new(paper_graph()))
    }

    #[test]
    fn paper_query_counts_two() {
        let out = engine()
            .execute_sparql(&paper_query_text(), &ExecOptions::new())
            .unwrap();
        assert_eq!(out.embedding_count, 2);
        assert_eq!(out.bindings.len(), 2);
    }

    #[test]
    fn simple_star() {
        let q = format!(
            "SELECT * WHERE {{ ?p <{PREFIX_Y}wasBornIn> ?c . ?p <{PREFIX_Y}diedIn> ?c . }}"
        );
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 1); // only Amy born+died in London
    }

    #[test]
    fn iri_constraint_unbound_var() {
        let q = format!("SELECT ?p WHERE {{ ?p <{PREFIX_Y}livedIn> <{PREFIX_X}United_States> . }}");
        let out = engine().execute_sparql(&q, &ExecOptions::new()).unwrap();
        assert_eq!(out.embedding_count, 2); // Amy, Blake
    }

    #[test]
    fn timeout_reports_timed_out() {
        let out = engine()
            .execute_sparql(
                &paper_query_text(),
                &ExecOptions::new().with_timeout(std::time::Duration::ZERO),
            )
            .unwrap();
        assert!(out.timed_out());
    }

    #[test]
    fn steps_put_iri_constraints_before_edges_and_chain_edges() {
        let rdf = paper_graph();
        // Declaration order is adversarial: the unrestricted ?a/?b scan
        // comes first, the constant pattern last. The reorder must flip
        // that and then chain ?p's edge off the IRI-bound ?p.
        let q = format!(
            "SELECT * WHERE {{ ?a <{PREFIX_Y}isPartOf> ?b . \
             ?p <{PREFIX_Y}diedIn> ?c . \
             ?p <{PREFIX_Y}livedIn> <{PREFIX_X}United_States> . }}"
        );
        let qg =
            amber_multigraph::QueryGraph::build(&amber_sparql::parse_select(&q).unwrap(), &rdf)
                .unwrap();
        let steps = steps_of(&qg);
        assert!(
            matches!(steps[0], Step::Iri { .. }),
            "first step must be the constant pattern, got {:?}",
            steps[0]
        );
        // The edge touching the IRI-bound variable (?p diedIn ?c) must be
        // scanned before the fully unbound ?a isPartOf ?b edge.
        let p = qg.vertex_by_name("p").unwrap();
        let edge_positions: Vec<bool> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Edge { from, .. } => Some(*from == p),
                _ => None,
            })
            .collect();
        assert_eq!(edge_positions, vec![true, false]);
    }

    #[test]
    fn constant_heavy_query_answers_within_tight_budget() {
        // Before the reorder this shape (constants declared last) forced a
        // full-edge-scan prefix; now it must answer almost instantly.
        let q = format!(
            "SELECT * WHERE {{ ?p <{PREFIX_Y}wasBornIn> ?c . \
             ?p <{PREFIX_Y}livedIn> <{PREFIX_X}United_States> . \
             ?c <{PREFIX_Y}isPartOf> <{PREFIX_X}England> . }}"
        );
        let out = engine()
            .execute_sparql(
                &q,
                &ExecOptions::new().with_timeout(std::time::Duration::from_secs(5)),
            )
            .unwrap();
        assert!(!out.timed_out());
        assert_eq!(out.embedding_count, 1); // Amy (born London ⊂ England, lived US)
    }

    #[test]
    fn unsat_query_is_empty_completed() {
        let out = engine()
            .execute_sparql(
                "SELECT * WHERE { ?a <http://nope/p> ?b . }",
                &ExecOptions::new(),
            )
            .unwrap();
        assert_eq!(out.embedding_count, 0);
        assert!(!out.timed_out());
    }
}
