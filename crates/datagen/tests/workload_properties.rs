//! Property-based tests for the workload generator: every generated query
//! must be well-formed, connected (complex), star-shaped (star), and
//! satisfiable on its source data with the identity assignment.

use amber_datagen::{Benchmark, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_multigraph::{QueryGraph, RdfGraph};
use amber_sparql::TermPattern;
use proptest::prelude::*;

fn graph_for(seed: u64) -> RdfGraph {
    RdfGraph::from_triples(&Benchmark::Lubm.generate(1, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn star_queries_are_stars(seed in 0u64..500, size in 3usize..20) {
        let rdf = graph_for(11);
        let mut gen = WorkloadGenerator::new(&rdf, seed);
        let Some(q) = gen.generate(&WorkloadConfig::new(QueryShape::Star, size)) else {
            return Ok(()); // no hub of this size — acceptable
        };
        prop_assert_eq!(q.query.patterns.len(), size);
        // Every pattern touches the center X0; no pattern links two rays.
        for p in &q.query.patterns {
            let touches = p.variables().any(|v| v == "X0");
            prop_assert!(touches, "ray without center: {}", p);
        }
        // The multigraph view: X0's component covers all variables.
        let qg = QueryGraph::build(&q.query, &rdf).unwrap();
        prop_assert!(!qg.is_unsatisfiable());
        prop_assert_eq!(qg.connected_components().len(), 1);
        // All non-center variables are satellites (degree 1).
        for u in qg.vertex_ids() {
            if qg.vertex(u).name.as_ref() != "X0" {
                prop_assert!(qg.degree(u) <= 1);
            }
        }
    }

    #[test]
    fn complex_queries_are_connected_and_satisfiable(seed in 0u64..500, size in 3usize..25) {
        let rdf = graph_for(12);
        let mut gen = WorkloadGenerator::new(&rdf, seed);
        let Some(q) = gen.generate(&WorkloadConfig::new(QueryShape::Complex, size)) else {
            return Ok(());
        };
        prop_assert_eq!(q.query.patterns.len(), size);
        let qg = QueryGraph::build(&q.query, &rdf).unwrap();
        prop_assert!(!qg.is_unsatisfiable(), "{}", q.text);
        prop_assert_eq!(qg.connected_components().len(), 1, "{}", q.text);
        // Round-trips through the printer.
        prop_assert_eq!(&amber_sparql::parse_select(&q.text).unwrap(), &q.query);
    }

    #[test]
    fn constant_probability_zero_yields_pure_variable_queries(seed in 0u64..200) {
        let rdf = graph_for(13);
        let mut gen = WorkloadGenerator::new(&rdf, seed);
        let mut config = WorkloadConfig::new(QueryShape::Complex, 8);
        config.constant_iri_probability = 0.0;
        let Some(q) = gen.generate(&config) else { return Ok(()); };
        for p in &q.query.patterns {
            prop_assert!(
                !matches!(p.subject, TermPattern::Iri(_)),
                "constant subject at p=0: {}",
                p
            );
            // objects may still be constant *literals* (always injected)
            prop_assert!(
                !matches!(p.object, TermPattern::Iri(_)),
                "constant IRI object at p=0: {}",
                p
            );
        }
    }
}
