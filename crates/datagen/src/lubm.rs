//! LUBM-like generator (paper §7.1: "LUBM provides a standard RDF benchmark
//! … we create LUBM100 where the number represents the scaling factor").
//!
//! LUBM (the Lehigh University Benchmark) is itself a synthetic generator
//! over a university schema, so unlike DBPEDIA/YAGO this is a
//! re-implementation rather than a stand-in: universities contain
//! departments; departments employ professors who advise students, teach
//! courses and write publications. The schema uses exactly **13 resource
//! predicates** (matching Table 4's edge-type count for LUBM100) plus
//! literal predicates (name, email, telephone) that the multigraph folds
//! into vertex attributes.
//!
//! `scale` is the number of universities, mirroring LUBM's scaling factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Iri, Literal, Triple};

/// Ontology namespace (predicates and classes).
pub const UB: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
/// Entity namespace.
pub const DATA: &str = "http://www.lubm-data.org/";

/// The 13 resource predicates.
const PREDICATES: [&str; 13] = [
    "rdf_type",
    "subOrganizationOf",
    "undergraduateDegreeFrom",
    "mastersDegreeFrom",
    "doctoralDegreeFrom",
    "memberOf",
    "worksFor",
    "advisor",
    "teacherOf",
    "takesCourse",
    "publicationAuthor",
    "headOf",
    "teachingAssistantOf",
];

fn pred(name: &str) -> Iri {
    debug_assert!(PREDICATES.contains(&name));
    Iri::new(format!("{UB}{name}"))
}

fn class(name: &str) -> Iri {
    Iri::new(format!("{UB}{name}"))
}

/// Generate `scale` universities worth of data.
pub fn generate(scale: u32, seed: u64) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    let universities = scale.max(1) as usize;

    for u in 0..universities {
        let univ = Iri::new(format!("{DATA}University{u}"));
        triples.push(Triple::new(
            univ.clone(),
            pred("rdf_type"),
            class("University"),
        ));
        triples.push(Triple::new(
            univ.clone(),
            Iri::new(format!("{UB}name")),
            Literal::plain(format!("University {u}")),
        ));

        let departments = rng.gen_range(3..=8);
        for d in 0..departments {
            let dept = Iri::new(format!("{DATA}University{u}/Department{d}"));
            triples.push(Triple::new(
                dept.clone(),
                pred("rdf_type"),
                class("Department"),
            ));
            triples.push(Triple::new(
                dept.clone(),
                pred("subOrganizationOf"),
                univ.clone(),
            ));

            // Professors.
            let professors = rng.gen_range(5..=12);
            let mut professor_iris = Vec::with_capacity(professors);
            let mut courses = Vec::new();
            for p in 0..professors {
                let prof = Iri::new(format!("{DATA}University{u}/Department{d}/Professor{p}"));
                let rank = match p {
                    0 => "FullProfessor",
                    _ if p % 3 == 0 => "AssociateProfessor",
                    _ => "AssistantProfessor",
                };
                triples.push(Triple::new(prof.clone(), pred("rdf_type"), class(rank)));
                triples.push(Triple::new(prof.clone(), pred("worksFor"), dept.clone()));
                triples.push(Triple::new(
                    prof.clone(),
                    Iri::new(format!("{UB}name")),
                    Literal::plain(format!("Professor {u}-{d}-{p}")),
                ));
                triples.push(Triple::new(
                    prof.clone(),
                    Iri::new(format!("{UB}emailAddress")),
                    Literal::plain(format!("prof{p}@dept{d}.univ{u}.edu")),
                ));
                // Degrees from random universities (creates inter-university
                // links, LUBM's signature cross-referencing).
                for degree in [
                    "undergraduateDegreeFrom",
                    "mastersDegreeFrom",
                    "doctoralDegreeFrom",
                ] {
                    let from = rng.gen_range(0..universities);
                    triples.push(Triple::new(
                        prof.clone(),
                        pred(degree),
                        Iri::new(format!("{DATA}University{from}")),
                    ));
                }
                if p == 0 {
                    triples.push(Triple::new(prof.clone(), pred("headOf"), dept.clone()));
                }

                // Courses taught.
                let course_count = rng.gen_range(1..=3);
                for c in 0..course_count {
                    let course =
                        Iri::new(format!("{DATA}University{u}/Department{d}/Course{p}_{c}"));
                    triples.push(Triple::new(
                        course.clone(),
                        pred("rdf_type"),
                        class("Course"),
                    ));
                    triples.push(Triple::new(prof.clone(), pred("teacherOf"), course.clone()));
                    courses.push(course);
                }

                // Publications.
                let pubs = rng.gen_range(2..=8);
                for pb in 0..pubs {
                    let publication = Iri::new(format!(
                        "{DATA}University{u}/Department{d}/Publication{p}_{pb}"
                    ));
                    triples.push(Triple::new(
                        publication.clone(),
                        pred("rdf_type"),
                        class("Publication"),
                    ));
                    triples.push(Triple::new(
                        publication,
                        pred("publicationAuthor"),
                        prof.clone(),
                    ));
                }
                professor_iris.push(prof);
            }

            // Students.
            let students = rng.gen_range(20..=60);
            for s in 0..students {
                let student = Iri::new(format!("{DATA}University{u}/Department{d}/Student{s}"));
                let is_grad = s % 4 == 0;
                triples.push(Triple::new(
                    student.clone(),
                    pred("rdf_type"),
                    class(if is_grad {
                        "GraduateStudent"
                    } else {
                        "UndergraduateStudent"
                    }),
                ));
                triples.push(Triple::new(student.clone(), pred("memberOf"), dept.clone()));
                triples.push(Triple::new(
                    student.clone(),
                    Iri::new(format!("{UB}telephone")),
                    Literal::plain(format!("+1-555-{u:02}{d:02}-{s:04}")),
                ));
                // Courses taken.
                if !courses.is_empty() {
                    let take = rng.gen_range(1..=3.min(courses.len()));
                    for _ in 0..take {
                        let course = &courses[rng.gen_range(0..courses.len())];
                        triples.push(Triple::new(
                            student.clone(),
                            pred("takesCourse"),
                            course.clone(),
                        ));
                    }
                }
                // Graduate students have advisors and may TA.
                if is_grad {
                    let advisor = &professor_iris[rng.gen_range(0..professor_iris.len())];
                    triples.push(Triple::new(
                        student.clone(),
                        pred("advisor"),
                        advisor.clone(),
                    ));
                    if s % 8 == 0 && !courses.is_empty() {
                        let course = &courses[rng.gen_range(0..courses.len())];
                        triples.push(Triple::new(
                            student.clone(),
                            pred("teachingAssistantOf"),
                            course.clone(),
                        ));
                    }
                }
            }
        }
    }
    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::RdfGraph;

    #[test]
    fn exactly_13_resource_predicates() {
        let rdf = RdfGraph::from_triples(&generate(2, 3));
        assert_eq!(
            rdf.stats().edge_types,
            13,
            "Table 4: LUBM has 13 edge types"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(1, 9), generate(1, 9));
        assert_ne!(generate(1, 9), generate(1, 10));
    }

    #[test]
    fn departments_are_hubs() {
        // Departments accumulate memberOf/worksFor/subOrganizationOf edges:
        // enough incident triples for size-50 star queries.
        let rdf = RdfGraph::from_triples(&generate(1, 3));
        let g = rdf.graph();
        let max_incident = g
            .vertices()
            .map(|v| {
                g.out_edges(v)
                    .iter()
                    .chain(g.in_edges(v))
                    .map(|e| e.types.len())
                    .sum::<usize>()
            })
            .max()
            .unwrap();
        assert!(max_incident >= 50, "largest hub has {max_incident} triples");
    }

    #[test]
    fn schema_relations_hold() {
        let rdf = RdfGraph::from_triples(&generate(1, 3));
        let g = rdf.graph();
        // every department is subOrganizationOf some university
        let sub = rdf
            .edge_type_by_iri(&format!("{UB}subOrganizationOf"))
            .unwrap();
        let dept_class = rdf.vertex_by_key(&format!("{UB}Department")).unwrap();
        let type_pred = rdf.edge_type_by_iri(&format!("{UB}rdf_type")).unwrap();
        for entry in g.in_edges(dept_class) {
            if !entry.types.contains(type_pred) {
                continue;
            }
            let dept = entry.neighbor;
            let has_parent = g.out_edges(dept).iter().any(|e| e.types.contains(sub));
            assert!(has_parent, "department without university");
        }
    }

    #[test]
    fn scale_is_university_count() {
        let rdf = RdfGraph::from_triples(&generate(3, 1));
        let count = (0..10)
            .filter(|u| rdf.vertex_by_key(&format!("{DATA}University{u}")).is_some())
            .count();
        assert_eq!(count, 3);
    }
}
