//! SPARQL workload generation (paper §7.2).
//!
//! Queries are extracted from the loaded data itself, so every generated
//! query has at least one embedding (the identity assignment over its seed
//! entities) — matching the paper's methodology:
//!
//! * **star-shaped**: pick a random *initial entity* present in at least
//!   `k` triples; choose `k` of its incident triples at random — the entity
//!   becomes the central variable, the other endpoints the rays;
//! * **complex-shaped**: navigate the neighbourhood of the initial entity
//!   through predicate links until `k` triples are collected;
//! * in both, object literals are injected as constants and a fraction of
//!   the IRI endpoints stay constant; the rest become variables.

use amber_multigraph::{AttrId, EdgeTypeId, RdfGraph, VertexId};
use amber_sparql::{Projection, SelectQuery, TermPattern, TriplePattern};
use amber_util::{FxHashMap, FxHashSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Star or complex (paper §7.2's two query sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// One central variable with `k` rays.
    Star,
    /// A neighbourhood walk of `k` triples.
    Complex,
}

impl QueryShape {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            QueryShape::Star => "Star-Shaped",
            QueryShape::Complex => "Complex-Shaped",
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Query shape.
    pub shape: QueryShape,
    /// Number of triple patterns `k` (the paper sweeps 10–50).
    pub size: usize,
    /// Probability that an IRI endpoint is kept constant instead of
    /// becoming a variable.
    pub constant_iri_probability: f64,
    /// Sampling attempts before giving up on a seed entity.
    pub max_attempts: usize,
}

impl WorkloadConfig {
    /// Paper-style defaults for the given shape and size.
    pub fn new(shape: QueryShape, size: usize) -> Self {
        Self {
            shape,
            size,
            constant_iri_probability: 0.15,
            max_attempts: 2_000,
        }
    }
}

/// One generated query plus its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The parsed form (what engines execute).
    pub query: SelectQuery,
    /// Canonical SPARQL text (what a user would have typed).
    pub text: String,
    /// Shape it was generated as.
    pub shape: QueryShape,
    /// Number of triple patterns.
    pub size: usize,
    /// The seed entity (IRI) the query was grown from.
    pub seed_entity: String,
}

/// One incident "triple unit" of an entity in the multigraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Unit {
    /// `(entity) -[t]-> (neighbor)`
    Out(VertexId, EdgeTypeId),
    /// `(neighbor) -[t]-> (entity)`
    In(VertexId, EdgeTypeId),
    /// `(entity) -[pred]-> "literal"`
    Attr(AttrId),
}

/// Canonical identity of the underlying data triple (for deduplication: a
/// self-loop shows up both as `Out` and `In`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TripleKey {
    Edge(VertexId, EdgeTypeId, VertexId),
    Attr(VertexId, AttrId),
}

fn unit_key(entity: VertexId, unit: Unit) -> TripleKey {
    match unit {
        Unit::Out(n, t) => TripleKey::Edge(entity, t, n),
        Unit::In(n, t) => TripleKey::Edge(n, t, entity),
        Unit::Attr(a) => TripleKey::Attr(entity, a),
    }
}

/// Generates workloads over one loaded graph.
pub struct WorkloadGenerator<'g> {
    rdf: &'g RdfGraph,
    rng: StdRng,
}

impl<'g> WorkloadGenerator<'g> {
    /// A deterministic generator over `rdf`.
    pub fn new(rdf: &'g RdfGraph, seed: u64) -> Self {
        Self {
            rdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate one query, or `None` when the data cannot support the
    /// requested shape/size (e.g. no entity with `size` incident triples).
    pub fn generate(&mut self, config: &WorkloadConfig) -> Option<GeneratedQuery> {
        match config.shape {
            QueryShape::Star => self.star(config),
            QueryShape::Complex => self.complex(config),
        }
    }

    /// Generate `n` queries (fewer if the data runs out of seeds).
    pub fn generate_many(&mut self, config: &WorkloadConfig, n: usize) -> Vec<GeneratedQuery> {
        (0..n).filter_map(|_| self.generate(config)).collect()
    }

    /// All incident units of an entity.
    fn units_of(&self, v: VertexId) -> Vec<Unit> {
        let g = self.rdf.graph();
        let mut units = Vec::new();
        for e in g.out_edges(v) {
            for &t in e.types.types() {
                units.push(Unit::Out(e.neighbor, t));
            }
        }
        for e in g.in_edges(v) {
            for &t in e.types.types() {
                units.push(Unit::In(e.neighbor, t));
            }
        }
        for &a in g.attributes(v) {
            units.push(Unit::Attr(a));
        }
        units
    }

    /// §7.2 star generation.
    fn star(&mut self, config: &WorkloadConfig) -> Option<GeneratedQuery> {
        let n = self.rdf.graph().vertex_count();
        if n == 0 {
            return None;
        }
        // Find an initial entity "present in at least k triples".
        let mut seed_entity = None;
        for _ in 0..config.max_attempts {
            let v = VertexId(self.rng.gen_range(0..n as u32));
            if self.units_of(v).len() >= config.size {
                seed_entity = Some(v);
                break;
            }
        }
        // Deterministic fallback: densest vertex.
        let center = match seed_entity {
            Some(v) => v,
            None => {
                let v = self
                    .rdf
                    .graph()
                    .vertices()
                    .max_by_key(|&v| self.units_of(v).len())?;
                if self.units_of(v).len() < config.size {
                    return None;
                }
                v
            }
        };

        let mut units = self.units_of(center);
        units.shuffle(&mut self.rng);
        // Deduplicate canonical triples (self loops appear twice).
        let mut seen: FxHashSet<TripleKey> = FxHashSet::default();
        units.retain(|&u| seen.insert(unit_key(center, u)));
        if units.len() < config.size {
            return None;
        }
        units.truncate(config.size);

        let mut builder = PatternBuilder::new(self.rdf, config.constant_iri_probability);
        let center_term = builder.variable_for(center);
        for unit in units {
            builder.push_unit(center, center_term.clone(), unit, &mut self.rng);
        }
        Some(builder.finish(QueryShape::Star, config.size, self.rdf.vertex_name(center)))
    }

    /// §7.2 complex generation: neighbourhood navigation.
    fn complex(&mut self, config: &WorkloadConfig) -> Option<GeneratedQuery> {
        let n = self.rdf.graph().vertex_count();
        if n == 0 {
            return None;
        }
        'restart: for _ in 0..config.max_attempts {
            let initial = VertexId(self.rng.gen_range(0..n as u32));
            if self.units_of(initial).is_empty() {
                continue;
            }
            let mut builder = PatternBuilder::new(self.rdf, config.constant_iri_probability);
            let mut used: FxHashSet<TripleKey> = FxHashSet::default();
            // Entities eligible for expansion (variables only).
            let mut frontier: Vec<VertexId> = vec![initial];
            builder.variable_for(initial);

            while builder.pattern_count() < config.size {
                if frontier.is_empty() {
                    continue 'restart; // walked into a dead end
                }
                let idx = self.rng.gen_range(0..frontier.len());
                let entity = frontier[idx];
                let fresh: Vec<Unit> = self
                    .units_of(entity)
                    .into_iter()
                    .filter(|&u| !used.contains(&unit_key(entity, u)))
                    .collect();
                let Some(&unit) = fresh.as_slice().choose(&mut self.rng) else {
                    frontier.swap_remove(idx);
                    continue;
                };
                used.insert(unit_key(entity, unit));
                let entity_term = builder.variable_for(entity);
                let new_variable = builder.push_unit(entity, entity_term, unit, &mut self.rng);
                if let Some(v) = new_variable {
                    frontier.push(v);
                }
            }
            return Some(builder.finish(
                QueryShape::Complex,
                config.size,
                self.rdf.vertex_name(initial),
            ));
        }
        None
    }
}

/// Accumulates triple patterns while tracking the entity → variable map.
struct PatternBuilder<'g> {
    rdf: &'g RdfGraph,
    constant_probability: f64,
    var_map: FxHashMap<VertexId, usize>,
    patterns: Vec<TriplePattern>,
}

impl<'g> PatternBuilder<'g> {
    fn new(rdf: &'g RdfGraph, constant_probability: f64) -> Self {
        Self {
            rdf,
            constant_probability,
            var_map: FxHashMap::default(),
            patterns: Vec::new(),
        }
    }

    fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The variable term of an entity (allocating `?X{i}` on first use).
    fn variable_for(&mut self, v: VertexId) -> TermPattern {
        let next = self.var_map.len();
        let idx = *self.var_map.entry(v).or_insert(next);
        TermPattern::var(format!("X{idx}"))
    }

    /// Term for the far endpoint of a unit: reuse its variable if the
    /// entity was seen before, otherwise flip a (biased) coin between a
    /// fresh variable and a constant IRI. Returns `Some(vertex)` when a new
    /// variable was introduced (it becomes walkable frontier).
    fn endpoint(&mut self, v: VertexId, rng: &mut StdRng) -> (TermPattern, Option<VertexId>) {
        if let Some(&idx) = self.var_map.get(&v) {
            return (TermPattern::var(format!("X{idx}")), None);
        }
        if rng.gen_range(0.0..1.0) < self.constant_probability {
            (TermPattern::iri(self.rdf.vertex_name(v)), None)
        } else {
            (self.variable_for(v), Some(v))
        }
    }

    /// Append the pattern for one unit; returns a newly-introduced variable
    /// endpoint, if any.
    fn push_unit(
        &mut self,
        entity: VertexId,
        entity_term: TermPattern,
        unit: Unit,
        rng: &mut StdRng,
    ) -> Option<VertexId> {
        match unit {
            Unit::Out(neighbor, t) => {
                let predicate = TermPattern::iri(self.rdf.edge_type_name(t));
                let (object, fresh) = self.endpoint(neighbor, rng);
                self.patterns
                    .push(TriplePattern::new(entity_term, predicate, object));
                fresh
            }
            Unit::In(neighbor, t) => {
                let predicate = TermPattern::iri(self.rdf.edge_type_name(t));
                let (subject, fresh) = self.endpoint(neighbor, rng);
                self.patterns
                    .push(TriplePattern::new(subject, predicate, entity_term));
                fresh
            }
            Unit::Attr(attr) => {
                let (pred, literal_nt) = self
                    .rdf
                    .dictionaries()
                    .resolve_attribute(attr)
                    .expect("attribute from this graph");
                let literal =
                    rdf_model::parse_literal(literal_nt).expect("stored literal is valid NT");
                self.patterns.push(TriplePattern::new(
                    entity_term,
                    TermPattern::iri(pred),
                    TermPattern::Literal(literal),
                ));
                let _ = entity;
                None
            }
        }
    }

    fn finish(self, shape: QueryShape, size: usize, seed_entity: &str) -> GeneratedQuery {
        debug_assert_eq!(self.patterns.len(), size);
        let query = SelectQuery {
            projection: Projection::Star,
            distinct: false,
            patterns: self.patterns,
        };
        let text = amber_sparql::to_sparql(&query);
        GeneratedQuery {
            query,
            text,
            shape,
            size,
            seed_entity: seed_entity.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    fn graph() -> RdfGraph {
        RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 99))
    }

    #[test]
    fn star_queries_have_a_center() {
        let rdf = graph();
        let mut gen = WorkloadGenerator::new(&rdf, 1);
        let q = gen
            .generate(&WorkloadConfig::new(QueryShape::Star, 10))
            .expect("LUBM has hubs");
        assert_eq!(q.query.patterns.len(), 10);
        // X0 (the center) must appear in every pattern.
        for p in &q.query.patterns {
            let mentions_center = p.variables().any(|v| v == "X0");
            assert!(mentions_center, "star ray without center: {p}");
        }
        // Text parses back to the same AST.
        assert_eq!(amber_sparql::parse_select(&q.text).unwrap(), q.query);
    }

    #[test]
    fn complex_queries_are_connected() {
        let rdf = graph();
        let mut gen = WorkloadGenerator::new(&rdf, 2);
        let q = gen
            .generate(&WorkloadConfig::new(QueryShape::Complex, 15))
            .expect("walk succeeds");
        assert_eq!(q.query.patterns.len(), 15);
        let qg = amber_multigraph::QueryGraph::build(&q.query, &rdf).unwrap();
        assert_eq!(
            qg.connected_components().len(),
            1,
            "complex walks produce connected queries"
        );
    }

    #[test]
    fn generated_queries_are_satisfiable_by_construction() {
        let rdf = graph();
        let mut gen = WorkloadGenerator::new(&rdf, 3);
        for shape in [QueryShape::Star, QueryShape::Complex] {
            for size in [5, 10, 20] {
                let Some(q) = gen.generate(&WorkloadConfig::new(shape, size)) else {
                    panic!("generation failed for {shape:?} size {size}");
                };
                let qg = amber_multigraph::QueryGraph::build(&q.query, &rdf).unwrap();
                assert!(
                    !qg.is_unsatisfiable(),
                    "{:?} size {size}: {}",
                    shape,
                    q.text
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let rdf = graph();
        let config = WorkloadConfig::new(QueryShape::Star, 10);
        let a = WorkloadGenerator::new(&rdf, 5).generate_many(&config, 5);
        let b = WorkloadGenerator::new(&rdf, 5).generate_many(&config, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn size_50_stars_exist_on_benchmarks() {
        for bench in Benchmark::ALL {
            let rdf = RdfGraph::from_triples(&bench.generate(1, 123));
            let mut gen = WorkloadGenerator::new(&rdf, 7);
            let q = gen.generate(&WorkloadConfig::new(QueryShape::Star, 50));
            assert!(q.is_some(), "{} must support size-50 stars", bench.name());
        }
    }

    #[test]
    fn constants_are_injected() {
        let rdf = graph();
        let mut gen = WorkloadGenerator::new(&rdf, 11);
        let mut config = WorkloadConfig::new(QueryShape::Complex, 20);
        config.constant_iri_probability = 0.9;
        let q = gen.generate(&config).unwrap();
        let has_constant_iri = q.query.patterns.iter().any(|p| {
            matches!(&p.subject, TermPattern::Iri(_)) || matches!(&p.object, TermPattern::Iri(_))
        });
        assert!(
            has_constant_iri,
            "high constant probability must inject IRIs:\n{}",
            q.text
        );
    }
}
