//! Scale-free RDF generator core (DBpedia/YAGO stand-ins).
//!
//! Real-world knowledge graphs share two traits the paper's evaluation
//! leans on: heavy-tailed entity degrees (hub entities with thousands of
//! incident triples — these seed the size-50 star queries of §7.2) and
//! Zipf-skewed predicate usage (a few predicates dominate). Both emerge
//! here from preferential attachment: object endpoints are sampled from an
//! *endpoint pool* that contains every previously used endpoint once per
//! occurrence, so the probability of picking an entity is proportional to
//! its current degree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{Iri, Literal, Triple};

/// Parameters of the scale-free generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Namespace for entity IRIs.
    pub entity_namespace: String,
    /// Namespace for predicate IRIs.
    pub predicate_namespace: String,
    /// Number of entities per scale unit.
    pub entities_per_scale: usize,
    /// Number of resource predicates (Table 4's "# Edge types").
    pub resource_predicates: usize,
    /// Number of literal predicates (become vertex attributes).
    pub literal_predicates: usize,
    /// Mean outgoing resource triples per entity.
    pub mean_out_degree: f64,
    /// Probability that an object is drawn by preferential attachment
    /// (otherwise uniformly at random).
    pub attachment_bias: f64,
    /// Zipf-ish skew of predicate choice (higher = more skewed).
    pub predicate_skew: f64,
    /// Probability that an entity carries literal attributes at all.
    pub attribute_probability: f64,
    /// Max literal attributes per entity.
    pub max_attributes: usize,
    /// Number of distinct literal values per literal predicate (smaller =
    /// more vertices share an attribute).
    pub literal_values: usize,
}

impl SyntheticConfig {
    /// DBPEDIA-like preset: 676 predicates (Table 4), strong hubs, rich
    /// infobox attributes.
    pub fn dbpedia(scale: u32) -> Self {
        Self {
            entity_namespace: "http://dbpedia.org/resource/".into(),
            predicate_namespace: "http://dbpedia.org/ontology/".into(),
            entities_per_scale: 2_000,
            resource_predicates: 676,
            literal_predicates: 120,
            mean_out_degree: 6.0,
            attachment_bias: 0.8,
            predicate_skew: 1.1,
            attribute_probability: 0.6,
            max_attributes: 5,
            literal_values: 400,
        }
        .scaled(scale)
    }

    /// YAGO-like preset: 44 predicates (Table 4), flatter skew.
    pub fn yago(scale: u32) -> Self {
        Self {
            entity_namespace: "http://yago-knowledge.org/resource/".into(),
            predicate_namespace: "http://yago-knowledge.org/property/".into(),
            entities_per_scale: 2_500,
            resource_predicates: 44,
            literal_predicates: 30,
            mean_out_degree: 4.5,
            attachment_bias: 0.7,
            predicate_skew: 0.9,
            attribute_probability: 0.5,
            max_attributes: 3,
            literal_values: 250,
        }
        .scaled(scale)
    }

    fn scaled(mut self, scale: u32) -> Self {
        self.entities_per_scale *= scale.max(1) as usize;
        self
    }
}

/// Generate the tripleset.
pub fn generate(config: &SyntheticConfig, seed: u64) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.entities_per_scale;
    let entity = |i: usize| format!("{}Entity_{i}", config.entity_namespace);
    let predicate = |i: usize| format!("{}relation_{i}", config.predicate_namespace);
    let literal_predicate = |i: usize| format!("{}property_{i}", config.predicate_namespace);

    // Zipf-ish predicate sampler via inverse-power transform.
    let sample_predicate = |rng: &mut StdRng| -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        let skew = config.predicate_skew;
        let idx = (u.powf(1.0 + skew) * config.resource_predicates as f64) as usize;
        idx.min(config.resource_predicates - 1)
    };

    let mut triples = Vec::with_capacity((n as f64 * config.mean_out_degree) as usize + n);
    // Preferential-attachment endpoint pool.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(triples.capacity());

    for s in 0..n {
        // Out-degree ~ geometric around the configured mean.
        let p = 1.0 / config.mean_out_degree;
        let mut degree = 1;
        while degree < 200 && rng.gen_range(0.0..1.0) > p {
            degree += 1;
        }
        for _ in 0..degree {
            let o = if !endpoint_pool.is_empty() && rng.gen_range(0.0..1.0) < config.attachment_bias
            {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            } else {
                rng.gen_range(0..n)
            };
            let pred = sample_predicate(&mut rng);
            triples.push(Triple::new(
                Iri::new(entity(s)),
                Iri::new(predicate(pred)),
                Iri::new(entity(o)),
            ));
            endpoint_pool.push(s);
            endpoint_pool.push(o);
        }

        // Literal attributes (infobox-style).
        if rng.gen_range(0.0..1.0) < config.attribute_probability {
            let count = rng.gen_range(1..=config.max_attributes);
            for _ in 0..count {
                let lp = rng.gen_range(0..config.literal_predicates);
                let value = rng.gen_range(0..config.literal_values);
                triples.push(Triple::new(
                    Iri::new(entity(s)),
                    Iri::new(literal_predicate(lp)),
                    Literal::plain(format!("value_{value}")),
                ));
            }
        }
    }
    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::RdfGraph;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::yago(1);
        assert_eq!(generate(&cfg, 5), generate(&cfg, 5));
        assert_ne!(generate(&cfg, 5), generate(&cfg, 6));
    }

    #[test]
    fn respects_predicate_budgets() {
        let cfg = SyntheticConfig::yago(1);
        let rdf = RdfGraph::from_triples(&generate(&cfg, 1));
        let stats = rdf.stats();
        assert!(stats.edge_types <= cfg.resource_predicates);
        // At this size all 44 predicates should actually appear.
        assert_eq!(stats.edge_types, 44);
        assert!(stats.attributes > 0);
    }

    #[test]
    fn produces_hub_entities() {
        // Preferential attachment must create at least one entity with ≥ 50
        // incident triples — the prerequisite for size-50 star queries.
        let cfg = SyntheticConfig::dbpedia(1);
        let rdf = RdfGraph::from_triples(&generate(&cfg, 2));
        let g = rdf.graph();
        let max_degree = g
            .vertices()
            .map(|v| {
                g.out_edges(v)
                    .iter()
                    .chain(g.in_edges(v))
                    .map(|e| e.types.len())
                    .sum::<usize>()
                    + g.attributes(v).len()
            })
            .max()
            .unwrap();
        assert!(max_degree >= 50, "max incident triples = {max_degree}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cfg = SyntheticConfig::dbpedia(1);
        let rdf = RdfGraph::from_triples(&generate(&cfg, 3));
        let g = rdf.graph();
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[0] as f64;
        let median = degrees[degrees.len() / 2] as f64;
        assert!(
            top > 10.0 * median.max(1.0),
            "hubs should dwarf the median (top {top}, median {median})"
        );
    }
}
