#![warn(missing_docs)]
//! Synthetic RDF benchmarks and SPARQL workloads (paper §7.1–§7.2).
//!
//! The paper evaluates on DBPEDIA, YAGO and LUBM100. Those dumps are not
//! available here, so this crate generates synthetic stand-ins that
//! reproduce the *paper-relevant* characteristics of each benchmark
//! (Table 4): predicate diversity, hub-heavy scale-free topology, and
//! literal-attribute density. See DESIGN.md for the substitution rationale.
//!
//! * [`lubm`] — a re-implementation of the LUBM university-domain generator
//!   (LUBM is itself synthetic): 13 resource predicates, deep class
//!   hierarchy encoded via `rdf:type` edges.
//! * [`synthetic`] — the scale-free generator core (preferential
//!   attachment + Zipf predicate skew) parameterized by
//!   [`synthetic::SyntheticConfig`].
//! * [`dbpedia`] / [`yago`] — presets of the scale-free core matching the
//!   two real-world benchmarks' predicate counts (hundreds vs 44).
//! * [`workload`] — the query workload generator of §7.2: star-shaped and
//!   complex-shaped queries of sizes 10–50 extracted from the generated
//!   data (hence guaranteed satisfiable), with literal and constant-IRI
//!   injection.
//! * [`skewed`] — deterministic skewed-recursion scheduling workloads
//!   (one giant hub seed among thousands of trivial seeds, plus uniform
//!   and single-seed controls) with closed-form embedding counts, built
//!   for the parallel scheduler benchmarks and equivalence tests.

pub mod dbpedia;
pub mod lubm;
pub mod skewed;
pub mod synthetic;
pub mod workload;

use rdf_model::Triple;

pub use workload::{GeneratedQuery, QueryShape, WorkloadConfig, WorkloadGenerator};

/// The three benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// DBPEDIA-like: hundreds of predicates, strong hubs (§7.1: 676 types).
    Dbpedia,
    /// YAGO-like: 44 predicates, fact-style.
    Yago,
    /// LUBM-like: 13 predicates, university schema.
    Lubm,
}

impl Benchmark {
    /// All benchmarks, in the paper's presentation order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Dbpedia, Benchmark::Yago, Benchmark::Lubm];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Dbpedia => "DBPEDIA",
            Benchmark::Yago => "YAGO",
            Benchmark::Lubm => "LUBM",
        }
    }

    /// Generate the tripleset at the given scale, deterministically in
    /// `seed`.
    ///
    /// Scale guidance: `1` is a smoke-test size (≈ thousands of triples),
    /// `10`–`50` are laptop benchmark sizes, and a few hundred approaches
    /// paper-shape (millions of triples need minutes and gigabytes).
    pub fn generate(&self, scale: u32, seed: u64) -> Vec<Triple> {
        match self {
            Benchmark::Dbpedia => dbpedia::generate(scale, seed),
            Benchmark::Yago => synthetic::generate(&synthetic::SyntheticConfig::yago(scale), seed),
            Benchmark::Lubm => lubm::generate(scale, seed),
        }
    }
}

/// YAGO preset (re-exported at the crate root for symmetry).
pub mod yago {
    use super::*;

    /// Generate the YAGO-like benchmark.
    pub fn generate(scale: u32, seed: u64) -> Vec<Triple> {
        synthetic::generate(&synthetic::SyntheticConfig::yago(scale), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::RdfGraph;

    #[test]
    fn benchmarks_generate_deterministically() {
        for bench in Benchmark::ALL {
            let a = bench.generate(1, 42);
            let b = bench.generate(1, 42);
            assert_eq!(a, b, "{} must be seed-deterministic", bench.name());
            let c = bench.generate(1, 43);
            assert_ne!(a, c, "{} must vary with the seed", bench.name());
        }
    }

    #[test]
    fn benchmark_shapes_match_paper_profile() {
        // Predicate-diversity ordering of Table 4:
        // DBPEDIA (676) > YAGO (44) > LUBM (13).
        let counts: Vec<usize> = Benchmark::ALL
            .iter()
            .map(|b| {
                let rdf = RdfGraph::from_triples(&b.generate(1, 7));
                rdf.stats().edge_types
            })
            .collect();
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2],
            "edge-type diversity must order DBPEDIA > YAGO > LUBM, got {counts:?}"
        );
        // LUBM's fixed schema: exactly 13 resource predicates (Table 4).
        assert_eq!(counts[2], 13);
    }

    #[test]
    fn scale_increases_size() {
        let small = Benchmark::Dbpedia.generate(1, 1).len();
        let large = Benchmark::Dbpedia.generate(3, 1).len();
        assert!(large > 2 * small, "scale 3 ≫ scale 1 ({large} vs {small})");
    }
}
