//! DBPEDIA-like benchmark preset.
//!
//! Thin wrapper over [`crate::synthetic`] with the DBpedia profile of the
//! paper's Table 4: ~676 distinct predicates, heavy hubs (the knowledge-
//! graph topology that makes the 50-triple star queries of Table 1
//! answerable at all), and infobox-style literal attributes.

use crate::synthetic::{generate as generate_synthetic, SyntheticConfig};
use rdf_model::Triple;

/// Generate the DBPEDIA-like tripleset.
pub fn generate(scale: u32, seed: u64) -> Vec<Triple> {
    generate_synthetic(&SyntheticConfig::dbpedia(scale), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::RdfGraph;

    #[test]
    fn predicate_diversity_is_high() {
        let rdf = RdfGraph::from_triples(&generate(1, 11));
        // With 2 000 entities not all 676 predicates necessarily fire, but
        // diversity must clearly exceed YAGO's 44.
        assert!(rdf.stats().edge_types > 100);
    }

    #[test]
    fn triples_use_dbpedia_namespaces() {
        let triples = generate(1, 11);
        let t = &triples[0];
        assert!(t
            .predicate
            .as_str()
            .starts_with("http://dbpedia.org/ontology/"));
    }
}
