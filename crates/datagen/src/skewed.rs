//! Skewed-recursion scheduling workloads.
//!
//! The parallel matcher's failure mode is not data volume but *recursion
//! skew*: a static seed partition (fork-per-chunk) serializes whenever one
//! seed's recursion subtree dwarfs the others. This module generates graphs
//! whose seed-candidate population has exactly that shape, deterministic
//! and with a closed-form embedding count, so scheduler benchmarks and
//! equivalence tests can dial skew up and down:
//!
//! * **hub seeds** — each hub `h` answers the [`chain_query`] with a
//!   two-level fan-out: `children` middle vertices (reached over a
//!   *double* edge, so the matcher materializes — and can split — the
//!   candidate list) each reaching the hub's `grandchildren` tail
//!   vertices. One hub contributes `children × grandchildren` embeddings
//!   and about `1 + children + children × grandchildren` search-tree
//!   nodes;
//! * **trivial seeds** — pass the signature/seed filters (they carry the
//!   full `in:{first}, out:{childA, childB}` synopsis) but dead-end two
//!   levels down: ~2 nodes each, 0 embeddings.
//!
//! [`SkewedConfig::skewed`] (1 giant hub + thousands of trivial seeds) is
//! the adversarial case for static chunking: whichever chunk holds the hub
//! carries essentially all the work. [`SkewedConfig::uniform`] (many equal
//! small hubs, no trivial seeds) is the fairness control where static
//! chunking is already optimal.

use rdf_model::{Iri, Triple};

/// Parameters of the skewed-recursion generator.
#[derive(Debug, Clone)]
pub struct SkewedConfig {
    /// Namespace for entity IRIs.
    pub entity_namespace: String,
    /// Namespace for predicate IRIs.
    pub predicate_namespace: String,
    /// Heavy seeds: each hub carries a full two-level subtree.
    pub hubs: usize,
    /// Middle-level fan-out per hub (size of the splittable candidate
    /// list at recursion depth 1).
    pub children: usize,
    /// Tail fan-out per hub (every child of a hub reaches all of the hub's
    /// grandchildren, so hub work is `children × grandchildren` nodes).
    pub grandchildren: usize,
    /// Seeds that pass the seed filter but die two recursion levels down.
    pub trivial_seeds: usize,
}

impl SkewedConfig {
    /// The adversarial preset: one giant hub among thousands of trivial
    /// seeds. Static chunking puts the hub plus a 1/`threads` share of the
    /// trivial seeds in one chunk, so its worker runs ~`hub_nodes` while
    /// the rest idle after microseconds.
    pub fn skewed() -> Self {
        Self {
            entity_namespace: "http://skew/e/".into(),
            predicate_namespace: "http://skew/p/".into(),
            hubs: 1,
            children: 128,
            grandchildren: 128,
            trivial_seeds: 4_000,
        }
    }

    /// The fairness control: many equal small hubs and no trivial seeds —
    /// every chunk carries the same work, so static chunking is already
    /// an optimal schedule and dynamic scheduling can only pay overhead.
    pub fn uniform() -> Self {
        Self {
            entity_namespace: "http://skew/e/".into(),
            predicate_namespace: "http://skew/p/".into(),
            hubs: 512,
            children: 4,
            grandchildren: 8,
            trivial_seeds: 0,
        }
    }

    /// The single-seed stress: exactly one (heavy) initial candidate.
    /// Fork-per-chunk cannot parallelize this at all (it falls back to the
    /// sequential path); only subtree splitting can.
    pub fn single_seed() -> Self {
        Self {
            trivial_seeds: 0,
            ..Self::skewed()
        }
    }

    /// Embeddings the [`chain_query`] has on [`generate`]'s output:
    /// `hubs × children × grandchildren` (trivial seeds contribute none).
    pub fn expected_embeddings(&self) -> u128 {
        (self.hubs as u128) * (self.children as u128) * (self.grandchildren as u128)
    }

    /// Seed candidates of the chain query's initial core vertex:
    /// every hub and every trivial seed passes `ProcessVertex` + signature.
    pub fn expected_seeds(&self) -> usize {
        self.hubs + self.trivial_seeds
    }

    fn entity(&self, name: impl std::fmt::Display) -> Iri {
        Iri::new(format!("{}{name}", self.entity_namespace))
    }

    fn predicate(&self, name: &str) -> Iri {
        Iri::new(format!("{}{name}", self.predicate_namespace))
    }
}

/// Predicate local names of the chain query, in chain order. `childA` and
/// `childB` are *parallel* predicates over the same vertex pairs: the
/// query requires both, which keeps the depth-1 candidate list off the
/// matcher's borrow-only fast path and therefore splittable.
const P_FIRST: &str = "first";
const P_CHILD_A: &str = "childA";
const P_CHILD_B: &str = "childB";
const P_GRAND: &str = "grand";
const P_TAIL: &str = "tail";

/// The 5-pattern chain query the generated graphs are built for:
///
/// ```sparql
/// SELECT * WHERE {
///   ?x0 <first>  ?x1 .   # satellite x0 of the initial core x1
///   ?x1 <childA> ?x2 .   # double edge: materialized, splittable level
///   ?x1 <childB> ?x2 .
///   ?x2 <grand>  ?x3 .   # fast-path (borrowed-list) level
///   ?x3 <tail>   ?x4 .   # satellite x4 of the last core x3
/// }
/// ```
///
/// Cores are `x1 → x2 → x3` (the ordering heuristics pick `x1` first: it
/// ties `x3` on satellite count and wins on edge instances), so the seed
/// loop runs over `x1`'s candidates — the hub/trivial population.
pub fn chain_query(config: &SkewedConfig) -> String {
    let p = |name: &str| format!("{}{name}", config.predicate_namespace);
    format!(
        "SELECT * WHERE {{ ?x0 <{}> ?x1 . ?x1 <{}> ?x2 . ?x1 <{}> ?x2 . \
         ?x2 <{}> ?x3 . ?x3 <{}> ?x4 . }}",
        p(P_FIRST),
        p(P_CHILD_A),
        p(P_CHILD_B),
        p(P_GRAND),
        p(P_TAIL)
    )
}

/// Generate the tripleset (deterministic; no randomness needed — skew is
/// structural, not sampled).
pub fn generate(config: &SkewedConfig) -> Vec<Triple> {
    let mut triples = Vec::new();
    let first = config.predicate(P_FIRST);
    let child_a = config.predicate(P_CHILD_A);
    let child_b = config.predicate(P_CHILD_B);
    let grand = config.predicate(P_GRAND);
    let tail = config.predicate(P_TAIL);

    for h in 0..config.hubs {
        let hub = config.entity(format_args!("hub{h}"));
        // x0 candidate for this hub.
        triples.push(Triple::new(
            config.entity(format_args!("src{h}")),
            first.clone(),
            hub.clone(),
        ));
        // Middle level: the hub reaches every child over BOTH parallel
        // predicates (the double query edge requires the intersection).
        for c in 0..config.children {
            let child = config.entity(format_args!("mid{h}_{c}"));
            triples.push(Triple::new(hub.clone(), child_a.clone(), child.clone()));
            triples.push(Triple::new(hub.clone(), child_b.clone(), child.clone()));
            // Tail level: every child reaches ALL of this hub's
            // grandchildren (shared set — work scales as children ×
            // grandchildren with only children + grandchildren vertices).
            for g in 0..config.grandchildren {
                let grandchild = config.entity(format_args!("leaf{h}_{g}"));
                triples.push(Triple::new(child.clone(), grand.clone(), grandchild));
            }
        }
        // x4 satellite of each grandchild.
        for g in 0..config.grandchildren {
            let grandchild = config.entity(format_args!("leaf{h}_{g}"));
            triples.push(Triple::new(
                grandchild,
                tail.clone(),
                config.entity(format_args!("end{h}_{g}")),
            ));
        }
    }

    // Trivial seeds: same synopsis as a hub (in: first, out: childA+childB)
    // but their sole child has no outgoing `grand` edge, so the recursion
    // dead-ends at depth 2 after ~2 nodes.
    for t in 0..config.trivial_seeds {
        let seed = config.entity(format_args!("triv{t}"));
        let dead_end = config.entity(format_args!("trivmid{t}"));
        triples.push(Triple::new(
            config.entity(format_args!("trivsrc{t}")),
            first.clone(),
            seed.clone(),
        ));
        triples.push(Triple::new(seed.clone(), child_a.clone(), dead_end.clone()));
        triples.push(Triple::new(seed, child_b.clone(), dead_end));
    }

    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_multigraph::RdfGraph;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let config = SkewedConfig::skewed();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        // hubs × (1 src + 2·children + children·grandchildren + grandchildren tails)
        //   + trivial × 3
        let per_hub =
            1 + 2 * config.children + config.children * config.grandchildren + config.grandchildren;
        assert_eq!(a.len(), config.hubs * per_hub + config.trivial_seeds * 3);
    }

    #[test]
    fn query_parses_and_matches_the_graph_predicates() {
        let config = SkewedConfig::uniform();
        let rdf = RdfGraph::from_triples(&generate(&config));
        let query = amber_sparql::parse_select(&chain_query(&config)).unwrap();
        let qg = amber_multigraph::QueryGraph::build(&query, &rdf).unwrap();
        assert!(!qg.is_unsatisfiable());
        assert_eq!(qg.connected_components().len(), 1);
    }

    #[test]
    fn presets_have_the_advertised_shape() {
        let skewed = SkewedConfig::skewed();
        assert_eq!(skewed.hubs, 1);
        assert!(skewed.trivial_seeds > 1_000);
        let uniform = SkewedConfig::uniform();
        assert!(uniform.hubs > 100);
        assert_eq!(uniform.trivial_seeds, 0);
        let single = SkewedConfig::single_seed();
        assert_eq!(single.expected_seeds(), 1);
        // Closed-form embedding counts.
        assert_eq!(
            skewed.expected_embeddings(),
            (skewed.children * skewed.grandchildren) as u128
        );
    }

    #[test]
    fn trivial_seeds_share_the_hub_synopsis() {
        // Both hub and trivial seeds must survive the signature-index seed
        // filter: in-edge `first`, out-edges `childA` and `childB`.
        let config = SkewedConfig {
            hubs: 1,
            children: 2,
            grandchildren: 2,
            trivial_seeds: 2,
            ..SkewedConfig::skewed()
        };
        let rdf = RdfGraph::from_triples(&generate(&config));
        let g = rdf.graph();
        let seeds: Vec<_> = g
            .vertices()
            .filter(|&v| {
                let has_in = !g.in_edges(v).is_empty();
                let outs: usize = g.out_edges(v).iter().map(|e| e.types.len()).sum();
                has_in && outs >= 2
            })
            .collect();
        assert!(seeds.len() >= config.expected_seeds());
    }
}
