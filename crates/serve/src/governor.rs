//! Server-wide memory governance.
//!
//! The engine already has a *per-query* `MemoryGovernor` with a staged
//! degradation ladder (shed result cache → shed probe caches → refuse
//! splits → abort with `QueryStatus::BudgetExceeded`). What a server
//! needs on top is a *global* bound: one tenant's heavy stream must
//! degrade through that ladder before it can starve its neighbors'
//! allocations. The [`ServerGovernor`] holds the server-wide byte budget
//! and partitions it into per-tenant quotas — an equal share per tenant
//! the server has seen — which each dispatch installs (via
//! `ExecOptions::tighten_memory_budget`) as the budget of that query's
//! own `MemoryGovernor`. Quotas only ever *tighten* a configured
//! per-query budget, never loosen it.
//!
//! The partition is deliberately simple and deterministic: with `T`
//! tenants, every query runs under `total / T` bytes. Quotas shrink as
//! new tenants appear (the peak tenant count is what the report shows)
//! and the degradation the quota causes is visible per tenant in
//! `PoolStats::degradation_steps`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The shared server-wide memory budget, partitioned into per-tenant
/// quotas. One per [`Server`](crate::Server); consulted at every
/// dispatch.
#[derive(Debug)]
pub struct ServerGovernor {
    /// The global byte budget across all tenants.
    total: usize,
    /// High-water tenant count (drives the report; quotas always use the
    /// live count handed in at dispatch).
    peak_tenants: AtomicUsize,
    /// Dispatches whose options were tightened by a quota.
    governed_dispatches: AtomicU64,
}

impl ServerGovernor {
    /// A governor over `total` bytes.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            peak_tenants: AtomicUsize::new(0),
            governed_dispatches: AtomicU64::new(0),
        }
    }

    /// The global byte budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The per-tenant quota with `tenants` tenants known to the server
    /// (equal partition; zero tenants counts as one).
    pub fn quota(&self, tenants: usize) -> usize {
        self.peak_tenants.fetch_max(tenants, Ordering::Relaxed);
        self.total / tenants.max(1)
    }

    /// Record one dispatch executed under a quota.
    pub(crate) fn record_governed(&self) {
        self.governed_dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot for the [`ServeReport`](crate::ServeReport).
    pub fn report(&self) -> GovernorReport {
        let peak = self.peak_tenants.load(Ordering::Relaxed);
        GovernorReport {
            total_budget: self.total,
            peak_tenants: peak,
            quota: self.total / peak.max(1),
            governed_dispatches: self.governed_dispatches.load(Ordering::Relaxed),
        }
    }
}

/// What server-wide governance did, in the [`ServeReport`](crate::ServeReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorReport {
    /// The configured global byte budget.
    pub total_budget: usize,
    /// The most tenants the partition ever divided over.
    pub peak_tenants: usize,
    /// The per-tenant quota at the peak tenant count.
    pub quota: usize,
    /// Dispatches that executed under a quota-tightened budget.
    pub governed_dispatches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_equally_and_tracks_the_peak() {
        let g = ServerGovernor::new(1 << 20);
        assert_eq!(g.quota(0), 1 << 20, "zero tenants counts as one");
        assert_eq!(g.quota(1), 1 << 20);
        assert_eq!(g.quota(4), 1 << 18);
        assert_eq!(g.quota(2), 1 << 19, "live count, not the peak");
        let report = g.report();
        assert_eq!(report.peak_tenants, 4);
        assert_eq!(report.quota, 1 << 18);
        assert_eq!(report.total_budget, 1 << 20);
    }

    #[test]
    fn tiny_budgets_floor_at_zero_bytes() {
        // total < tenants → a zero-byte quota: the per-query governor
        // aborts at its first checkpoint (full ladder), which is the
        // correct degradation, not an error.
        let g = ServerGovernor::new(3);
        assert_eq!(g.quota(4), 0);
    }

    #[test]
    fn counts_governed_dispatches() {
        let g = ServerGovernor::new(1024);
        g.record_governed();
        g.record_governed();
        assert_eq!(g.report().governed_dispatches, 2);
    }
}
