#![warn(missing_docs)]
//! A concurrent, multi-tenant serving layer over one shared
//! [`AmberEngine`].
//!
//! The paper's engine answers one query at a time; a serving deployment
//! multiplexes many client streams onto one in-memory graph. This crate is
//! the thin, dependency-free layer that makes that safe and fair — a
//! thread-per-core request loop over an in-process queue, **no async
//! runtime**:
//!
//! * **shared engine, per-tenant sessions** — all tenants execute against
//!   one [`AmberEngine`] (one graph, one index set, one shared plan store,
//!   so plan derivations are paid once across the whole fleet), but each
//!   tenant owns a private [`QuerySession`] (arenas, candidate cache, plan
//!   and result caches). A tenant's requests are serialized onto its
//!   session — sessions are `&mut` state — while different tenants'
//!   requests interleave freely on the worker pool, which the concurrent
//!   [`amber_exec`](https://docs.rs) runs underneath make actually
//!   parallel;
//! * **admission control** — the server holds at most
//!   [`ServeConfig::queue_capacity`] queued requests; beyond that,
//!   [`Server::submit`] fails *immediately* with the typed
//!   [`ServeError::Overloaded`] — carrying the observed queue depth and a
//!   retry-after hint derived from the recent service rate (pair it with
//!   [`amber_util::jittered_backoff`] on the client) — instead of
//!   buffering unboundedly or blocking the client;
//! * **deadline propagation** — [`Server::submit_with`] accepts a total
//!   admission-to-answer budget ([`SubmitOptions::budget`]); queue wait is
//!   charged against it, a request whose budget expires while still queued
//!   is shed with the typed [`ServeError::DeadlineExpired`] *without any
//!   engine work*, and only the *remaining* budget is handed to the
//!   engine as its execution timeout;
//! * **per-tenant circuit breakers** — with [`ServeConfig::breaker`] set,
//!   a tenant whose requests keep failing hard (quarantined panics or
//!   timeouts) trips into fast-fail ([`ServeError::CircuitOpen`]) instead
//!   of consuming pool time; after a cooldown, half-open probes readmit
//!   one request at a time (see [`breaker`]);
//! * **server-wide memory governance** — [`ServeConfig::memory_budget`]
//!   partitions a global byte budget into per-tenant quotas that feed each
//!   query's own `MemoryGovernor` degradation ladder (see [`governor`]);
//! * **panic and failure isolation** — a query that fails (or panics; the
//!   engine quarantines panics into typed
//!   [`EngineError::Internal`](amber::EngineError) values) poisons only
//!   its own [`Ticket`]; the tenant's session and every other tenant keep
//!   serving. The serving loop itself is also a chaos surface: the
//!   `serve-admit`, `serve-dispatch` and `serve-drain` fault points
//!   (`AMBER_CHAOS`, see `amber_util::fault`) inject panics, delays and
//!   spurious allocation failures into admission, dispatch and drain, and
//!   all serving-layer locks recover from poisoning
//!   (`PoisonError::into_inner`) rather than propagating it;
//! * **graceful drain** — [`Server::shutdown`] stops admission, serves
//!   everything already queued, joins the workers, and returns a
//!   [`ServeReport`] with per-tenant counts, breaker and shed statistics,
//!   and the aggregated cache statistics (including the zero-copy counter
//!   `result_hit_copied_bytes`, which the serving benchmark pins at 0).
//!   [`Server::shutdown_now`] instead revokes: queued requests are
//!   answered with [`ServeError::ShuttingDown`] and in-flight work is
//!   cancelled through each request's [`CancelToken`].
//!
//! ```
//! use amber::AmberEngine;
//! use amber_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(AmberEngine::load_ntriples(
//!     "<http://e/a> <http://e/p> <http://e/b> .",
//! ).unwrap());
//! let server = Server::start(engine, ServeConfig::default());
//! let ticket = server
//!     .submit_sparql("tenant-a", "SELECT * WHERE { ?s <http://e/p> ?o . }")
//!     .unwrap();
//! let outcome = ticket.wait().unwrap();
//! assert_eq!(outcome.embedding_count, 1);
//! let report = server.shutdown();
//! assert_eq!(report.served(), 1);
//! ```

pub mod breaker;
pub mod governor;

pub use breaker::{BreakerConfig, BreakerReport, BreakerState, TripCause};
pub use governor::{GovernorReport, ServerGovernor};

use amber::{
    AmberEngine, CacheStats, CancelToken, EngineError, ExecOptions, PlanCacheStats, PoolStats,
    QueryOutcome, QuerySession, QueryStatus, SharedPlanStats,
};
use amber_obs::{Counter, Gauge, Histogram};
use amber_sparql::SelectQuery;
use amber_util::fault::{self, FaultPoint};
use amber_util::timing::Budget;
use breaker::{Admission, Breaker};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-layer registry handles, resolved once per process. All live
/// updates are additionally gated on [`amber_obs::obs_enabled`] at the
/// call sites, so `AMBER_OBS=off` costs one relaxed load per site.
struct ServeMetrics {
    /// `amber_serve_queue_depth` — admitted-not-yet-dispatched requests
    /// (mirrors `DispatchState::queued`; updated under the serving lock).
    queue_depth: Arc<Gauge>,
    /// `amber_serve_queue_wait_us` — admission-to-dispatch wait.
    queue_wait_us: Arc<Histogram>,
    served: Arc<Counter>,
    shed: Arc<Counter>,
    rejected: Arc<Counter>,
    fast_fails: Arc<Counter>,
    revoked: Arc<Counter>,
    breaker_trips: Arc<Counter>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        queue_depth: amber_obs::gauge("amber_serve_queue_depth", &[]),
        queue_wait_us: amber_obs::histogram("amber_serve_queue_wait_us", &[]),
        served: amber_obs::counter("amber_serve_requests_total", &[("outcome", "served")]),
        shed: amber_obs::counter("amber_serve_requests_total", &[("outcome", "shed")]),
        rejected: amber_obs::counter("amber_serve_requests_total", &[("outcome", "rejected")]),
        fast_fails: amber_obs::counter("amber_serve_requests_total", &[("outcome", "fast_fail")]),
        revoked: amber_obs::counter("amber_serve_requests_total", &[("outcome", "revoked")]),
        breaker_trips: amber_obs::counter("amber_serve_breaker_trips_total", &[]),
    })
}

/// Knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serving worker threads (each runs the request loop; clamped to at
    /// least 1). Parallelism *within* a query is separate — it comes from
    /// the engine's execution pool via [`ServeConfig::options`].
    pub workers: usize,
    /// Admission bound: maximum requests queued (not yet dispatched)
    /// across all tenants. A full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Start with dispatch paused: requests queue up (admission still
    /// applies) until [`Server::resume`]. Lets tests and benchmarks build
    /// a deterministic backlog before any dispatch happens.
    pub paused: bool,
    /// Record the tenant of every dispatch, in order, for the
    /// [`ServeReport`] — the observable fairness is asserted on this.
    pub record_dispatch: bool,
    /// Per-tenant circuit breakers (see [`breaker`]); `None` disables
    /// them (every submission is admitted regardless of failure history).
    pub breaker: Option<BreakerConfig>,
    /// Server-wide memory budget in bytes, partitioned into equal
    /// per-tenant quotas that *tighten* each query's
    /// `ExecOptions::memory_budget` (see [`governor`]); `None` leaves
    /// memory governance entirely per-query.
    pub memory_budget: Option<usize>,
    /// Execution options for every request; also sizes each tenant's
    /// session caches. Defaults to [`ExecOptions::batch`] (plan + result
    /// caches on — a serving deployment is exactly the repeated-query
    /// workload they exist for).
    pub options: ExecOptions,
    /// Enable each tenant session's flight recorder: per-query span
    /// traces (parse → plan → per-component search → materialize) retained
    /// in a bounded ring. No-op under `AMBER_OBS=off`. See
    /// `docs/observability.md`.
    pub trace: bool,
    /// Slow-query threshold: with [`trace`](Self::trace) on, a query
    /// whose wall time reaches this renders its full span tree into the
    /// session's slow-query log (`Some(Duration::ZERO)` logs every query;
    /// `None` logs none).
    pub slow_query_threshold: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            paused: false,
            record_dispatch: false,
            breaker: None,
            memory_budget: None,
            options: ExecOptions::batch(),
            trace: false,
            slow_query_threshold: None,
        }
    }
}

/// Per-request submission options ([`Server::submit_with`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Total admission-to-answer budget. Queue wait is charged against
    /// it: a request still queued when the budget expires is shed with
    /// [`ServeError::DeadlineExpired`] (zero engine work), and a request
    /// that dispatches hands only the *remaining* budget to the engine as
    /// its execution timeout.
    pub budget: Option<Duration>,
    /// Per-request execution timeout, tightening (never loosening) the
    /// server-wide [`ServeConfig::options`] timeout. Unlike
    /// [`budget`](Self::budget), the clock starts at dispatch, not at
    /// admission.
    pub timeout: Option<Duration>,
    /// Force the tenant session's flight recorder on for this one request
    /// (span tree retained in the session's trace ring), even when the
    /// server-wide [`ServeConfig::trace`] is off. The session's tracing
    /// configuration is restored after the request. No-op under
    /// `AMBER_OBS=off`.
    pub tracing: bool,
}

impl SubmitOptions {
    /// Options with no budget, no per-request timeout, no forced tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the total admission-to-answer [`budget`](Self::budget).
    pub fn with_budget(mut self, total: Duration) -> Self {
        self.budget = Some(total);
        self
    }

    /// Set the per-request execution [`timeout`](Self::timeout).
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }

    /// Set per-request [`tracing`](Self::tracing).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }
}

/// Typed serving-layer failure. Engine failures pass through; the serving
/// layer adds admission and lifecycle outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was dispatched and the engine failed it (parse error,
    /// quarantined panic, cancellation, …).
    Engine(EngineError),
    /// The request's [`SubmitOptions::budget`] expired while it was still
    /// queued: it was shed before any engine work. `waited` is the queue
    /// wait actually observed (≥ `budget`).
    DeadlineExpired {
        /// The admission-to-answer budget the request was submitted with.
        budget: Duration,
        /// How long the request had waited when it was shed.
        waited: Duration,
    },
    /// Rejected at admission: this tenant's circuit breaker is open after
    /// consecutive hard failures. Nothing was enqueued; retry after
    /// `retry_after` (jittered — see [`amber_util::jittered_backoff`]).
    CircuitOpen {
        /// The kind of consecutive hard failure that tripped the breaker.
        cause: TripCause,
        /// Remaining breaker cooldown at rejection time.
        retry_after: Duration,
    },
    /// Rejected at admission: the server already holds `queued` requests
    /// of a `capacity`-bounded queue. Nothing was enqueued; back off and
    /// retry (the hint is derived from the recently observed service
    /// rate — jitter it with [`amber_util::jittered_backoff`]).
    Overloaded {
        /// The configured [`ServeConfig::queue_capacity`].
        capacity: usize,
        /// Requests queued at rejection time.
        queued: usize,
        /// Estimated time until the queue has drained one slot.
        retry_after: Duration,
    },
    /// Rejected because the server is draining for shutdown, or revoked by
    /// [`Server::shutdown_now`] while still queued.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::DeadlineExpired { budget, waited } => write!(
                f,
                "deadline expired in queue: waited {waited:?} of a {budget:?} budget"
            ),
            ServeError::CircuitOpen { cause, retry_after } => write!(
                f,
                "circuit open after consecutive {cause}; retry in {retry_after:?}"
            ),
            ServeError::Overloaded {
                capacity,
                queued,
                retry_after,
            } => {
                write!(
                    f,
                    "server overloaded: {queued} of {capacity} queue slots in use; \
                     retry in ~{retry_after:?}"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<ServeError> for amber::Error {
    /// Fold a serving-layer failure into the unified [`amber::Error`]
    /// taxonomy, which carries the wire mapping
    /// ([`status_code`](amber::Error::status_code) /
    /// [`retry_after`](amber::Error::retry_after)) every front-end
    /// shares. The structured [`TripCause`] is rendered to text (the
    /// engine crate cannot name serving-layer types).
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Engine(e) => amber::Error::Engine(e),
            ServeError::DeadlineExpired { budget, waited } => {
                amber::Error::DeadlineExpired { budget, waited }
            }
            ServeError::CircuitOpen { cause, retry_after } => amber::Error::CircuitOpen {
                cause: cause.to_string(),
                retry_after,
            },
            ServeError::Overloaded {
                capacity,
                queued,
                retry_after,
            } => amber::Error::Overloaded {
                capacity,
                queued,
                retry_after,
            },
            ServeError::ShuttingDown => amber::Error::ShuttingDown,
        }
    }
}

/// One accepted request's completion slot.
struct TicketInner {
    slot: Mutex<Option<Result<QueryOutcome, ServeError>>>,
    done: Condvar,
}

/// Handle to one accepted request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let completed = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        f.debug_struct("Ticket")
            .field("completed", &completed)
            .finish()
    }
}

impl Ticket {
    /// Block until the request completes and take its result. Each
    /// accepted request completes exactly once — even across shutdown,
    /// since drain serves (or [`shutdown_now`](Server::shutdown_now)
    /// revokes) the whole backlog before the workers exit.
    pub fn wait(self) -> Result<QueryOutcome, ServeError> {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .inner
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A queued request (tenant is the queue key).
struct Request {
    query: SelectQuery,
    ticket: Arc<TicketInner>,
    /// Admission instant — the `amber_serve_queue_wait_us` observation is
    /// `dispatch − admitted`.
    admitted: Instant,
    /// The admission-to-answer budget, clocked from admission.
    budget: Option<Budget>,
    /// Per-request execution timeout (clocked from dispatch).
    timeout: Option<Duration>,
    /// Revocation handle, installed into the engine's options at dispatch
    /// so [`Server::shutdown_now`] can cancel in-flight work.
    cancel: CancelToken,
    /// This request is its tenant's single half-open breaker probe.
    probe: bool,
    /// Force the session's flight recorder on for this dispatch
    /// ([`SubmitOptions::tracing`]); restored afterwards.
    tracing: bool,
}

/// Per-tenant serving state.
#[derive(Default)]
struct TenantState {
    /// FIFO of this tenant's admitted, not-yet-dispatched requests.
    queue: VecDeque<Request>,
    /// The tenant's session, present while no request of this tenant is in
    /// flight (a worker takes it for the duration of a dispatch — that
    /// hand-off is what serializes a tenant's stream onto its `&mut`
    /// session). `None` before the first dispatch completes, too.
    session: Option<QuerySession>,
    /// A request of this tenant is currently executing.
    busy: bool,
    /// Requests completed (successfully or with an engine error).
    served: u64,
    /// Requests shed with [`ServeError::DeadlineExpired`] (never
    /// executed, not counted in `served`).
    shed: u64,
    /// This tenant's circuit breaker (inert unless
    /// [`ServeConfig::breaker`] is set).
    breaker: Breaker,
    /// The in-flight request's cancel token, for `shutdown_now`.
    inflight_cancel: Option<CancelToken>,
}

/// Dispatcher state under the one serving-layer mutex.
struct DispatchState {
    tenants: HashMap<Arc<str>, TenantState>,
    /// Round-robin ring: tenants with queued work and no request in
    /// flight. A tenant appears at most once; it re-enters at the *back*
    /// after each dispatch, which is the entire fairness mechanism.
    rotation: VecDeque<Arc<str>>,
    /// Total queued (not yet dispatched) requests — the admission gauge.
    queued: usize,
    paused: bool,
    draining: bool,
    rejected: u64,
    dispatch_order: Vec<Arc<str>>,
    /// EWMA of executed-request service time in nanoseconds (0 until the
    /// first completion); feeds the `Overloaded` retry-after hint.
    service_ewma_ns: u64,
    /// Serving-layer invariant violations recovered instead of panicking
    /// (stale rotation entries after lock-poison recovery).
    internal_faults: u64,
    /// `serve-drain` chaos panics trapped on the workers' drain path.
    drain_faults: u64,
}

impl DispatchState {
    /// Estimated time until one queue slot frees up, from the recent
    /// service rate: `ewma × (queued + 1) / workers`, with a 1 ms default
    /// before any completion has been observed.
    fn retry_after(&self, workers: usize) -> Duration {
        const DEFAULT_SERVICE_NS: u64 = 1_000_000;
        let per_request = if self.service_ewma_ns == 0 {
            DEFAULT_SERVICE_NS
        } else {
            self.service_ewma_ns
        };
        let pending = (self.queued as u64).saturating_add(1);
        Duration::from_nanos(per_request.saturating_mul(pending) / workers.max(1) as u64)
    }
}

struct ServerShared {
    state: Mutex<DispatchState>,
    /// Wakes workers: new work queued, rotation refilled, resume, drain.
    work_cv: Condvar,
}

impl ServerShared {
    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Everything one serving worker needs (cloned per worker at start).
struct WorkerContext {
    engine: Arc<AmberEngine>,
    shared: Arc<ServerShared>,
    options: ExecOptions,
    record_dispatch: bool,
    breaker: Option<BreakerConfig>,
    governor: Option<Arc<ServerGovernor>>,
    trace: bool,
    slow_query_threshold: Option<Duration>,
}

/// One dispatch acquired off the rotation.
struct Dispatch {
    tenant: Arc<str>,
    request: Request,
    session: Option<QuerySession>,
    /// Tenants known to the server at dispatch time (the governor's
    /// partition denominator).
    tenant_count: usize,
}

/// A running serving layer over one shared engine. Submission is `&self`
/// (share the server across client threads with `std::thread::scope` or an
/// `Arc`); shutdown consumes the server, so no submission can race the
/// drain.
pub struct Server {
    engine: Arc<AmberEngine>,
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
    governor: Option<Arc<ServerGovernor>>,
    worker_count: usize,
}

impl Server {
    /// Spawn the serving workers and start accepting requests (paused if
    /// [`ServeConfig::paused`]).
    pub fn start(engine: Arc<AmberEngine>, config: ServeConfig) -> Self {
        let shared = Arc::new(ServerShared {
            state: Mutex::new(DispatchState {
                tenants: HashMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                paused: config.paused,
                draining: false,
                rejected: 0,
                dispatch_order: Vec::new(),
                service_ewma_ns: 0,
                internal_faults: 0,
                drain_faults: 0,
            }),
            work_cv: Condvar::new(),
        });
        let governor = config
            .memory_budget
            .map(|b| Arc::new(ServerGovernor::new(b)));
        let worker_count = config.workers.max(1);
        let workers = (0..worker_count)
            .map(|id| {
                let ctx = WorkerContext {
                    engine: Arc::clone(&engine),
                    shared: Arc::clone(&shared),
                    options: config.options.clone(),
                    record_dispatch: config.record_dispatch,
                    breaker: config.breaker.clone(),
                    governor: governor.clone(),
                    trace: config.trace,
                    slow_query_threshold: config.slow_query_threshold,
                };
                std::thread::Builder::new()
                    .name(format!("amber-serve-{id}"))
                    .spawn(move || serve_loop(&ctx))
                    .expect("spawn serving worker")
            })
            .collect();
        Self {
            engine,
            shared,
            workers,
            config,
            governor,
            worker_count,
        }
    }

    /// Submit one parsed query for `tenant` with default
    /// [`SubmitOptions`] (no budget, no per-request timeout). Returns a
    /// [`Ticket`] immediately on admission; rejects with the typed
    /// [`ServeError::Overloaded`] / [`ServeError::CircuitOpen`] without
    /// enqueueing anything. Requests of one tenant complete in submission
    /// order; requests of different tenants are scheduled round-robin.
    pub fn submit(&self, tenant: &str, query: SelectQuery) -> Result<Ticket, ServeError> {
        self.submit_with(tenant, query, SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with per-request lifecycle options: a
    /// total admission-to-answer budget and/or an execution timeout.
    pub fn submit_with(
        &self,
        tenant: &str,
        query: SelectQuery,
        opts: SubmitOptions,
    ) -> Result<Ticket, ServeError> {
        // Serve-admission chaos point: a panic here becomes a typed
        // admission error (nothing enqueued); an alloc-fail signal is
        // spurious overload, exercised below.
        let signal = match catch_unwind(|| fault::inject(FaultPoint::ServeAdmit)) {
            Ok(signal) => signal,
            Err(payload) => {
                return Err(ServeError::Engine(EngineError::Internal {
                    task: "serve admission".to_string(),
                    payload: payload_text(payload.as_ref()),
                }))
            }
        };
        // The budget clock starts at admission — queue wait is charged.
        let budget = opts.budget.map(Budget::starting_now);
        let mut state = self.shared.lock();
        if state.draining {
            return Err(ServeError::ShuttingDown);
        }
        if signal.alloc_fail || state.queued >= self.config.queue_capacity {
            state.rejected += 1;
            if amber_obs::obs_enabled() {
                serve_metrics().rejected.inc();
            }
            return Err(ServeError::Overloaded {
                capacity: self.config.queue_capacity,
                queued: state.queued,
                retry_after: state.retry_after(self.worker_count),
            });
        }
        let key: Arc<str> = match state.tenants.keys().find(|k| ***k == *tenant) {
            Some(existing) => Arc::clone(existing),
            None => Arc::from(tenant),
        };
        let entry = state.tenants.entry(Arc::clone(&key)).or_default();
        // Breaker admission runs after the capacity check so a fast-fail
        // never consumes a queue slot and an overload never burns the
        // single half-open probe.
        let probe = if self.config.breaker.is_some() {
            match entry.breaker.admit(Instant::now()) {
                Admission::Admit => false,
                Admission::Probe => true,
                Admission::FastFail { cause, retry_after } => {
                    if amber_obs::obs_enabled() {
                        serve_metrics().fast_fails.inc();
                    }
                    return Err(ServeError::CircuitOpen { cause, retry_after });
                }
            }
        } else {
            false
        };
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let was_idle = entry.queue.is_empty() && !entry.busy;
        entry.queue.push_back(Request {
            query,
            ticket: Arc::clone(&inner),
            admitted: Instant::now(),
            budget,
            timeout: opts.timeout,
            cancel: CancelToken::new(),
            probe,
            tracing: opts.tracing,
        });
        state.queued += 1;
        if amber_obs::obs_enabled() {
            serve_metrics().queue_depth.set(state.queued as i64);
        }
        if was_idle {
            state.rotation.push_back(key);
        }
        drop(state);
        self.shared.work_cv.notify_all();
        Ok(Ticket { inner })
    }

    /// Parse SPARQL text and [`submit`](Self::submit) it. Parse errors are
    /// reported synchronously (nothing is enqueued for them).
    pub fn submit_sparql(&self, tenant: &str, sparql: &str) -> Result<Ticket, ServeError> {
        self.submit_sparql_with(tenant, sparql, SubmitOptions::default())
    }

    /// Parse SPARQL text and [`submit_with`](Self::submit_with) it.
    pub fn submit_sparql_with(
        &self,
        tenant: &str,
        sparql: &str,
        opts: SubmitOptions,
    ) -> Result<Ticket, ServeError> {
        let query = amber_sparql::parse_select(sparql).map_err(EngineError::from)?;
        self.submit_with(tenant, query, opts)
    }

    /// Pause dispatch: admitted requests queue up but are not started.
    /// In-flight requests finish normally.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resume dispatch after [`Server::pause`] (or a paused start).
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_cv.notify_all();
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queued(&self) -> usize {
        self.shared.lock().queued
    }

    /// A consistent snapshot of the process-wide metrics registry —
    /// engine, cache, execution-pool, chaos, and serving-layer series —
    /// renderable as Prometheus text
    /// ([`render_prometheus`](amber_obs::MetricsSnapshot::render_prometheus))
    /// or JSON ([`render_json`](amber_obs::MetricsSnapshot::render_json)).
    /// Callable at any time, including mid-run; under `AMBER_OBS=off` the
    /// engine/serve series simply stay at zero. See
    /// `docs/observability.md` for the catalog.
    pub fn metrics_snapshot(&self) -> amber_obs::MetricsSnapshot {
        amber_obs::snapshot()
    }

    /// One tenant's rendered slow-query-log entries, oldest first (see
    /// [`ServeConfig::slow_query_threshold`]). Empty if the tenant is
    /// unknown, its session is mid-dispatch, or tracing is off.
    pub fn slow_query_log(&self, tenant: &str) -> Vec<String> {
        let state = self.shared.lock();
        state
            .tenants
            .iter()
            .find(|(key, _)| ***key == *tenant)
            .and_then(|(_, t)| t.session.as_ref())
            .map(|s| s.flight_recorder().slow_log().map(str::to_string).collect())
            .unwrap_or_default()
    }

    /// One tenant's most recent recorded span trace, rendered (see
    /// [`SubmitOptions::with_tracing`] and [`ServeConfig::trace`]). `None`
    /// if the tenant is unknown, its session is mid-dispatch, or nothing
    /// was traced. The completion-visibility contract applies: a trace of
    /// a request is readable as soon as its ticket is redeemed.
    pub fn last_trace(&self, tenant: &str) -> Option<String> {
        let state = self.shared.lock();
        state
            .tenants
            .iter()
            .find(|(key, _)| ***key == *tenant)
            .and_then(|(_, t)| t.session.as_ref())
            .and_then(|s| s.flight_recorder().last())
            .map(|trace| trace.render())
    }

    /// Stop admission, serve everything already queued (resuming dispatch
    /// if paused), join the workers, and report. Every admitted ticket is
    /// completed before this returns.
    pub fn shutdown(mut self) -> ServeReport {
        {
            let mut state = self.shared.lock();
            state.draining = true;
            // A paused server still owes answers for its backlog.
            state.paused = false;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.build_report()
    }

    /// Revoke instead of draining: stop admission, answer every *queued*
    /// request with [`ServeError::ShuttingDown`] without executing it,
    /// cancel in-flight requests through their [`CancelToken`]s (they
    /// complete with partial results and `QueryStatus::Cancelled`), join
    /// the workers, and report.
    pub fn shutdown_now(mut self) -> ServeReport {
        let revoked = {
            let mut state = self.shared.lock();
            state.draining = true;
            state.paused = false;
            let now = Instant::now();
            let mut revoked = Vec::new();
            for tenant in state.tenants.values_mut() {
                while let Some(request) = tenant.queue.pop_front() {
                    if request.probe {
                        // The probe never ran; let the next submission
                        // (of a restarted server sharing the breaker
                        // history — or simply the bookkeeping) re-probe.
                        tenant.breaker.probe_aborted(now);
                    }
                    revoked.push(request.ticket);
                }
                if let Some(cancel) = &tenant.inflight_cancel {
                    cancel.cancel();
                }
            }
            state.queued = 0;
            state.rotation.clear();
            if amber_obs::obs_enabled() {
                let m = serve_metrics();
                m.queue_depth.set(0);
                m.revoked.add(revoked.len() as u64);
            }
            revoked
        };
        self.shared.work_cv.notify_all();
        for ticket in revoked {
            answer(&ticket, Err(ServeError::ShuttingDown));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.build_report()
    }

    fn build_report(&self) -> ServeReport {
        let state = self.shared.lock();
        let mut tenants: Vec<TenantReport> = state
            .tenants
            .iter()
            .map(|(name, t)| TenantReport {
                tenant: name.to_string(),
                served: t.served,
                deadline_shed: t.shed,
                queries_executed: t.session.as_ref().map_or(0, |s| s.queries_executed()),
                plan_stats: t
                    .session
                    .as_ref()
                    .map(|s| s.plan_stats())
                    .unwrap_or_default(),
                pool: t
                    .session
                    .as_ref()
                    .map(|s| s.pool_stats().clone())
                    .unwrap_or_default(),
                breaker: t.breaker.report(),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut aggregate = PlanCacheStats::default();
        for tenant in &tenants {
            accumulate_cache(&mut aggregate.plans, &tenant.plan_stats.plans);
            accumulate_cache(&mut aggregate.results, &tenant.plan_stats.results);
            aggregate.result_hit_copied_bytes += tenant.plan_stats.result_hit_copied_bytes;
        }
        ServeReport {
            rejected: state.rejected,
            deadline_shed: tenants.iter().map(|t| t.deadline_shed).sum(),
            breaker_trips: tenants.iter().map(|t| t.breaker.trips).sum(),
            breaker_fast_fails: tenants.iter().map(|t| t.breaker.fast_fails).sum(),
            internal_faults: state.internal_faults,
            drain_faults: state.drain_faults,
            governor: self.governor.as_ref().map(|g| g.report()),
            plan_stats: aggregate,
            shared_plans: self.engine.shared_plan_stats(),
            dispatch_order: state.dispatch_order.iter().map(|t| t.to_string()).collect(),
            tenants,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; a dropped-without-shutdown server
        // still drains its backlog (every ticket is owed an answer).
        if self.workers.is_empty() {
            return;
        }
        {
            let mut state = self.shared.lock();
            state.draining = true;
            state.paused = false;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Sum `extra` into `total` (counter-wise; gauges take the sum too, since
/// per-tenant caches are disjoint).
fn accumulate_cache(total: &mut CacheStats, extra: &CacheStats) {
    total.hits += extra.hits;
    total.misses += extra.misses;
    total.bypasses += extra.bypasses;
    total.evictions += extra.evictions;
    total.entries += extra.entries;
    total.result_bytes += extra.result_bytes;
}

/// Render a trapped panic payload as text (`panic!` literals and formatted
/// messages; placeholder otherwise), mirroring the engine's quarantine.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Complete one ticket.
fn answer(ticket: &TicketInner, result: Result<QueryOutcome, ServeError>) {
    let mut slot = ticket.slot.lock().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(result);
    drop(slot);
    ticket.done.notify_all();
}

/// How one completion moves the tenant's breaker.
enum BreakerVerdict {
    /// Successful completion: close.
    Success,
    /// Hard failure: count toward (or cause) a trip.
    Failure(TripCause),
    /// The server's own throttling (shed, cancelled, budget-exceeded) or
    /// a synchronous failure class the breaker ignores.
    Neutral,
}

fn classify(result: &Result<QueryOutcome, ServeError>) -> BreakerVerdict {
    match result {
        Ok(outcome) => match outcome.status {
            QueryStatus::Completed => BreakerVerdict::Success,
            QueryStatus::TimedOut => BreakerVerdict::Failure(TripCause::TimedOut),
            QueryStatus::Cancelled | QueryStatus::BudgetExceeded => BreakerVerdict::Neutral,
        },
        Err(ServeError::Engine(EngineError::Internal { .. })) => {
            BreakerVerdict::Failure(TripCause::Internal)
        }
        Err(_) => BreakerVerdict::Neutral,
    }
}

/// The request loop each serving worker runs: pick the next tenant off the
/// rotation, take its session, shed or execute outside the lock, hand the
/// session back, answer the ticket.
fn serve_loop(ctx: &WorkerContext) {
    loop {
        let Some(dispatch) = acquire_dispatch(ctx) else {
            // Drain complete. The serve-drain chaos point injects panics
            // into this exit path; they are trapped and counted — the
            // drain has already answered every ticket and must finish.
            if catch_unwind(|| fault::inject(FaultPoint::ServeDrain)).is_err() {
                ctx.shared.lock().drain_faults += 1;
            }
            return;
        };
        let Dispatch {
            tenant,
            request,
            mut session,
            tenant_count,
        } = dispatch;

        // Deadline shed: a request whose budget expired while queued is
        // answered with the typed error and does ZERO engine work — no
        // session is created, no node is visited.
        let shed_as = request
            .budget
            .filter(|b| b.expired())
            .map(|b| ServeError::DeadlineExpired {
                budget: b.total(),
                waited: b.waited(),
            });
        let (result, service_ns) = match shed_as {
            Some(err) => (Err(err), None),
            None => {
                // Per-request options: the remaining admission budget and
                // the per-request timeout tighten the base timeout, the
                // governor quota tightens the memory budget, and the
                // cancel token makes the dispatch revocable. A
                // `serve-dispatch` alloc-fail signal zeroes the memory
                // budget — spurious exhaustion driving the degradation
                // ladder.
                let signal = match catch_unwind(|| fault::inject(FaultPoint::ServeDispatch)) {
                    Ok(signal) => Ok(signal),
                    Err(payload) => Err(ServeError::Engine(EngineError::Internal {
                        task: "serve dispatch".to_string(),
                        payload: payload_text(payload.as_ref()),
                    })),
                };
                match signal {
                    Err(err) => (Err(err), Some(0)),
                    Ok(signal) => {
                        let mut options = ctx.options.clone();
                        if let Some(b) = request.budget {
                            options =
                                options.tighten_timeout(b.remaining().unwrap_or(Duration::ZERO));
                        }
                        if let Some(limit) = request.timeout {
                            options = options.tighten_timeout(limit);
                        }
                        if let Some(governor) = &ctx.governor {
                            options = options.tighten_memory_budget(governor.quota(tenant_count));
                            governor.record_governed();
                        }
                        if signal.alloc_fail {
                            options = options.tighten_memory_budget(0);
                        }
                        options = options.with_cancel(request.cancel.clone());
                        let sess = session.get_or_insert_with(|| {
                            let mut sess = ctx.engine.create_session(&options);
                            if ctx.trace || ctx.slow_query_threshold.is_some() {
                                sess.configure_tracing(true, ctx.slow_query_threshold);
                            }
                            sess
                        });
                        // Per-request tracing ([`SubmitOptions::tracing`]):
                        // force the recorder on for this dispatch only and
                        // restore the session's own configuration after.
                        let restore_tracing = if request.tracing {
                            let (was_enabled, threshold) = sess.flight_recorder().config();
                            if !was_enabled {
                                sess.configure_tracing(true, threshold);
                            }
                            Some((was_enabled, threshold))
                        } else {
                            None
                        };
                        let started = Instant::now();
                        // Execute outside the serving lock — this is where
                        // concurrent tenants actually overlap. The engine
                        // quarantines its own panics into typed `Internal`
                        // errors; this trap catches the serving layer's.
                        let result = match catch_unwind(AssertUnwindSafe(|| {
                            ctx.engine
                                .execute_in_session(&request.query, &options, sess)
                        })) {
                            Ok(r) => r.map_err(ServeError::Engine),
                            Err(payload) => Err(ServeError::Engine(EngineError::Internal {
                                task: "serve dispatch".to_string(),
                                payload: payload_text(payload.as_ref()),
                            })),
                        };
                        if let Some((was_enabled, threshold)) = restore_tracing {
                            sess.configure_tracing(was_enabled, threshold);
                        }
                        let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        (result, Some(elapsed))
                    }
                }
            }
        };

        // Completion-visibility contract (pinned by the
        // `counters_are_visible_before_the_answer` regression test and
        // documented in docs/observability.md): ALL bookkeeping for a
        // request — session hand-back, served/shed counts, breaker
        // movement, and the registry metrics fed from them — lands
        // BEFORE `answer` publishes the result. A client that redeemed
        // its ticket therefore never observes a counter lagging its own
        // request: the tenant is ready for the next submission, a hard
        // failure has already moved the breaker, and a metrics snapshot
        // taken after `Ticket::wait` includes the request. (The
        // engine-side registry flush happens even earlier, inside
        // `execute_in_session` itself.) The only serve-side state that
        // updates *outside* this pre-answer block is the `retry_after`
        // service-rate EWMA input ordering across workers — a hint, not
        // a counter.
        {
            let mut state = ctx.shared.lock();
            if let Some(ns) = service_ns {
                state.service_ewma_ns = if state.service_ewma_ns == 0 {
                    ns
                } else {
                    (3 * state.service_ewma_ns + ns) / 4
                };
            }
            match state.tenants.get_mut(&tenant) {
                Some(entry) => {
                    entry.session = session;
                    entry.inflight_cancel = None;
                    entry.busy = false;
                    let obs = amber_obs::obs_enabled();
                    if service_ns.is_some() {
                        entry.served += 1;
                        if obs {
                            serve_metrics().served.inc();
                        }
                    } else {
                        entry.shed += 1;
                        if obs {
                            serve_metrics().shed.inc();
                        }
                    }
                    if let Some(cfg) = &ctx.breaker {
                        let now = Instant::now();
                        match classify(&result) {
                            BreakerVerdict::Success => entry.breaker.record_success(),
                            BreakerVerdict::Failure(cause) => {
                                let tripped = entry.breaker.record_failure(cfg, cause, now);
                                if tripped && obs {
                                    serve_metrics().breaker_trips.inc();
                                }
                            }
                            BreakerVerdict::Neutral => {
                                if request.probe {
                                    entry.breaker.probe_aborted(now);
                                }
                            }
                        }
                    }
                    if !entry.queue.is_empty() {
                        state.rotation.push_back(Arc::clone(&tenant));
                    }
                }
                // Tenant state vanished (recovered lock poisoning): count
                // the invariant violation instead of panicking; the ticket
                // below is still answered.
                None => state.internal_faults += 1,
            }
        }
        ctx.shared.work_cv.notify_all();

        answer(&request.ticket, result);
    }
}

/// Block until one dispatch is available (or the drain completes: `None`).
fn acquire_dispatch(ctx: &WorkerContext) -> Option<Dispatch> {
    let mut state = ctx.shared.lock();
    loop {
        if state.draining && state.queued == 0 {
            return None;
        }
        if !state.paused {
            if let Some(tenant) = state.rotation.pop_front() {
                // Poison-robust: a stale rotation entry (possible after a
                // recovered poisoned lock left state mid-mutation) is
                // counted and skipped, never unwrapped.
                let Some(entry) = state.tenants.get_mut(&tenant) else {
                    state.internal_faults += 1;
                    continue;
                };
                let Some(request) = entry.queue.pop_front() else {
                    state.internal_faults += 1;
                    continue;
                };
                entry.busy = true;
                entry.inflight_cancel = Some(request.cancel.clone());
                let session = entry.session.take();
                state.queued -= 1;
                if amber_obs::obs_enabled() {
                    let m = serve_metrics();
                    m.queue_depth.set(state.queued as i64);
                    m.queue_wait_us
                        .observe(request.admitted.elapsed().as_micros() as u64);
                }
                if ctx.record_dispatch {
                    state.dispatch_order.push(Arc::clone(&tenant));
                }
                let tenant_count = state.tenants.len();
                return Some(Dispatch {
                    tenant,
                    request,
                    session,
                    tenant_count,
                });
            }
        }
        state = ctx
            .shared
            .work_cv
            .wait(state)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's identifier as passed to [`Server::submit`].
    pub tenant: String,
    /// Requests completed (including engine errors; admission rejections
    /// are *not* served and count in [`ServeReport::rejected`], deadline
    /// sheds count in [`deadline_shed`](Self::deadline_shed)).
    pub served: u64,
    /// Requests shed with [`ServeError::DeadlineExpired`] after their
    /// budget expired in the queue — answered, never executed.
    pub deadline_shed: u64,
    /// Queries the tenant's session actually executed (the zero-work
    /// assertion for shed requests: shed-only tenants report 0).
    pub queries_executed: u64,
    /// The tenant session's plan/result cache counters.
    pub plan_stats: PlanCacheStats,
    /// The tenant session's execution-pool counters (node visits,
    /// trapped panics, cancellations, memory-governor degradation steps).
    pub pool: PoolStats,
    /// The tenant's circuit-breaker counters and final state.
    pub breaker: BreakerReport,
}

/// What a drained [`Server`] observed, returned by [`Server::shutdown`]
/// and [`Server::shutdown_now`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
    /// Requests rejected at admission ([`ServeError::Overloaded`]).
    pub rejected: u64,
    /// Requests shed with [`ServeError::DeadlineExpired`] across all
    /// tenants.
    pub deadline_shed: u64,
    /// Circuit-breaker trips across all tenants.
    pub breaker_trips: u64,
    /// Submissions fast-failed with [`ServeError::CircuitOpen`] across
    /// all tenants.
    pub breaker_fast_fails: u64,
    /// Serving-layer invariant violations recovered instead of panicking.
    pub internal_faults: u64,
    /// `serve-drain` chaos panics trapped on the drain path.
    pub drain_faults: u64,
    /// Server-wide memory governance counters (`None` without
    /// [`ServeConfig::memory_budget`]).
    pub governor: Option<GovernorReport>,
    /// All tenants' plan/result cache counters summed — includes
    /// `result_hit_copied_bytes`, the zero-copy regression gauge.
    pub plan_stats: PlanCacheStats,
    /// The engine-wide shared plan store counters (cross-tenant plan
    /// reuse).
    pub shared_plans: SharedPlanStats,
    /// Tenant of every dispatch in dispatch order (empty unless
    /// [`ServeConfig::record_dispatch`]).
    pub dispatch_order: Vec<String>,
}

impl ServeReport {
    /// Total requests served across all tenants.
    pub fn served(&self) -> u64 {
        self.tenants.iter().map(|t| t.served).sum()
    }

    /// The served count of one tenant (0 if never seen).
    pub fn served_for(&self, tenant: &str) -> u64 {
        self.tenant(tenant).map_or(0, |t| t.served)
    }

    /// The deadline-shed count of one tenant (0 if never seen).
    pub fn shed_for(&self, tenant: &str) -> u64 {
        self.tenant(tenant).map_or(0, |t| t.deadline_shed)
    }

    /// One tenant's breaker counters (`None` if never seen).
    pub fn breaker_for(&self, tenant: &str) -> Option<BreakerReport> {
        self.tenant(tenant).map(|t| t.breaker)
    }

    fn tenant(&self, tenant: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_engine() -> Arc<AmberEngine> {
        let triples = "\
<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> <http://e/c> .\n\
<http://e/c> <http://e/q> <http://e/a> .\n";
        Arc::new(AmberEngine::load_ntriples(triples).expect("demo graph parses"))
    }

    const CHAIN: &str = "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?z . }";
    const EDGE: &str = "SELECT * WHERE { ?s <http://e/q> ?o . }";

    #[test]
    fn serves_multiple_tenants_correctly() {
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let a = server.submit_sparql("a", CHAIN).unwrap();
        let b = server.submit_sparql("b", EDGE).unwrap();
        assert_eq!(a.wait().unwrap().embedding_count, 1);
        assert_eq!(b.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.served(), 2);
        assert_eq!(report.served_for("a"), 1);
        assert_eq!(report.served_for("b"), 1);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn overload_rejects_typed_with_depth_and_retry_hint() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                paused: true, // nothing dispatches: the queue must fill
                ..ServeConfig::default()
            },
        );
        let t1 = server.submit_sparql("a", CHAIN).unwrap();
        let t2 = server.submit_sparql("b", EDGE).unwrap();
        match server.submit_sparql("c", EDGE) {
            Err(ServeError::Overloaded {
                capacity,
                queued,
                retry_after,
            }) => {
                assert_eq!(capacity, 2);
                assert_eq!(queued, 2, "the observed depth rides along");
                // Paused server, no completions yet: the hint falls back
                // to 1 ms per request; 3 pending over 1 worker → 3 ms.
                assert_eq!(retry_after, Duration::from_millis(3));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        server.resume();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        let report = server.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.served(), 2);
        assert_eq!(report.served_for("c"), 0);
    }

    #[test]
    fn queue_expired_requests_shed_with_zero_engine_work() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                paused: true, // guarantee queue wait: the budget expires queued
                ..ServeConfig::default()
            },
        );
        let doomed = server
            .submit_sparql_with("a", CHAIN, SubmitOptions::new().with_budget(Duration::ZERO))
            .unwrap();
        let healthy = server.submit_sparql("b", EDGE).unwrap();
        server.resume();
        match doomed.wait() {
            Err(ServeError::DeadlineExpired { budget, waited: _ }) => {
                assert_eq!(budget, Duration::ZERO);
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert_eq!(healthy.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.deadline_shed, 1);
        assert_eq!(report.shed_for("a"), 1);
        assert_eq!(report.served_for("a"), 0, "shed requests are not served");
        let a = report.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert_eq!(a.queries_executed, 0, "a shed request executes nothing");
        assert_eq!(a.pool.total_nodes(), 0, "and visits zero nodes");
    }

    #[test]
    fn remaining_budget_bounds_execution_as_a_timeout() {
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        // A generous budget dispatches normally and completes.
        let ok = server
            .submit_sparql_with(
                "a",
                CHAIN,
                SubmitOptions::new().with_budget(Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(ok.wait().unwrap().status, QueryStatus::Completed);
        // A zero per-request timeout dispatches but times out immediately
        // (deterministically: the deadline fires on its first poll). A
        // fresh tenant, so no warm result cache short-circuits execution.
        let slow = server
            .submit_sparql_with(
                "b",
                CHAIN,
                SubmitOptions::new().with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(slow.wait().unwrap().status, QueryStatus::TimedOut);
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 1);
        assert_eq!(report.served_for("b"), 1);
        assert_eq!(report.deadline_shed, 0);
    }

    #[test]
    fn breaker_trips_fast_fails_and_isolates_tenants() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                breaker: Some(BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(3600),
                }),
                ..ServeConfig::default()
            },
        );
        // Two consecutive zero-timeout requests → two TimedOut outcomes →
        // the breaker trips (bookkeeping lands before the ticket answer,
        // so the order below is deterministic).
        for _ in 0..2 {
            let t = server
                .submit_sparql_with(
                    "a",
                    CHAIN,
                    SubmitOptions::new().with_timeout(Duration::ZERO),
                )
                .unwrap();
            assert_eq!(t.wait().unwrap().status, QueryStatus::TimedOut);
        }
        match server.submit_sparql("a", CHAIN) {
            Err(ServeError::CircuitOpen { cause, retry_after }) => {
                assert_eq!(cause, TripCause::TimedOut);
                assert!(retry_after <= Duration::from_secs(3600));
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        // The neighbor tenant is unaffected.
        let b = server.submit_sparql("b", EDGE).unwrap();
        assert_eq!(b.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.breaker_fast_fails, 1);
        let a = report.breaker_for("a").unwrap();
        assert_eq!(a.state, BreakerState::Open);
        assert_eq!(report.breaker_for("b").unwrap().state, BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_success_recloses_the_breaker() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                breaker: Some(BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::ZERO, // half-open on the next submit
                }),
                ..ServeConfig::default()
            },
        );
        let t = server
            .submit_sparql_with(
                "a",
                CHAIN,
                SubmitOptions::new().with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(t.wait().unwrap().status, QueryStatus::TimedOut);
        // The zero cooldown admits the next submission as the probe; it
        // succeeds and the breaker closes again.
        let probe = server.submit_sparql("a", CHAIN).unwrap();
        assert_eq!(probe.wait().unwrap().status, QueryStatus::Completed);
        let report = server.shutdown();
        assert_eq!(report.breaker_trips, 1);
        assert_eq!(report.breaker_for("a").unwrap().state, BreakerState::Closed);
    }

    #[test]
    fn global_memory_budget_degrades_through_the_governor_ladder() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                memory_budget: Some(1), // 1 byte: every query walks the full ladder
                ..ServeConfig::default()
            },
        );
        let t = server.submit_sparql("a", CHAIN).unwrap();
        assert_eq!(t.wait().unwrap().status, QueryStatus::BudgetExceeded);
        let report = server.shutdown();
        let governor = report.governor.expect("governor configured");
        assert_eq!(governor.total_budget, 1);
        assert_eq!(governor.peak_tenants, 1);
        assert!(governor.governed_dispatches >= 1);
        let a = report.tenants.iter().find(|t| t.tenant == "a").unwrap();
        assert!(
            a.pool.degradation_steps >= 1,
            "the quota drives the per-query ladder: {:?}",
            a.pool
        );
    }

    #[test]
    fn shutdown_now_revokes_the_queue_typed() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                paused: true, // the backlog never dispatches
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| server.submit_sparql("a", CHAIN).unwrap())
            .collect();
        let report = server.shutdown_now();
        for ticket in tickets {
            assert!(matches!(ticket.wait(), Err(ServeError::ShuttingDown)));
        }
        assert_eq!(report.served(), 0, "nothing executed");
        assert_eq!(report.deadline_shed, 0);
    }

    #[test]
    fn dispatch_is_round_robin_across_tenants() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1, // one dispatcher → the order is deterministic
                paused: true,
                record_dispatch: true,
                ..ServeConfig::default()
            },
        );
        // A heavy tenant piles up 3 requests before two light tenants
        // submit one each.
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(server.submit_sparql("heavy", CHAIN).unwrap());
        }
        tickets.push(server.submit_sparql("light-1", EDGE).unwrap());
        tickets.push(server.submit_sparql("light-2", EDGE).unwrap());
        server.resume();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(
            report.dispatch_order,
            vec!["heavy", "light-1", "light-2", "heavy", "heavy"],
            "light tenants are served after ONE heavy request, not after its whole backlog"
        );
    }

    #[test]
    fn per_tenant_requests_complete_in_order() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
        );
        // Interleave two tenants' streams; each stream must come back in
        // submission order (tickets are redeemed in submission order and
        // each must be complete).
        let mut tickets = Vec::new();
        for _ in 0..10 {
            tickets.push(server.submit_sparql("a", CHAIN).unwrap());
            tickets.push(server.submit_sparql("b", EDGE).unwrap());
        }
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 10);
        assert_eq!(report.served_for("b"), 10);
    }

    #[test]
    fn failures_poison_only_their_ticket() {
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        // An unparseable query fails synchronously, nothing queued.
        assert!(matches!(
            server.submit_sparql("a", "SELECT nonsense"),
            Err(ServeError::Engine(_))
        ));
        // The tenant keeps serving.
        let ok = server.submit_sparql("a", CHAIN).unwrap();
        assert_eq!(ok.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 1);
    }

    #[test]
    fn shutdown_drains_a_paused_backlog() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                paused: true,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| server.submit_sparql("a", CHAIN).unwrap())
            .collect();
        // Never resumed: shutdown itself must serve the backlog.
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 5);
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "every admitted ticket is answered");
        }
    }

    #[test]
    fn warm_tenants_hit_their_result_cache_without_copying() {
        if !amber::plan_cache_enabled() {
            return; // AMBER_PLAN_CACHE=off lane pins cache counters to zero
        }
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        for _ in 0..4 {
            server.submit_sparql("a", CHAIN).unwrap().wait().unwrap();
        }
        let report = server.shutdown();
        let stats = &report.plan_stats;
        assert!(stats.results.hits >= 3, "verbatim repeats hit: {stats:?}");
        assert_eq!(
            stats.result_hit_copied_bytes, 0,
            "result-cache hits must serve shared rows, not copies"
        );
    }

    #[test]
    fn counters_are_visible_before_the_answer() {
        // Regression test for the completion-visibility contract
        // documented on `serve_loop`: every counter a request moves —
        // per-tenant served counts, breaker state, registry metrics —
        // is already readable when `Ticket::wait` returns. A client
        // never observes bookkeeping lagging its own request.
        let _on = amber_obs::force_enabled(true);
        let served_handle =
            amber_obs::counter("amber_serve_requests_total", &[("outcome", "served")]);
        let before = served_handle.get();
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                breaker: Some(BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_secs(3600),
                }),
                ..ServeConfig::default()
            },
        );
        let t = server
            .submit_sparql_with(
                "a",
                CHAIN,
                SubmitOptions::new().with_timeout(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(t.wait().unwrap().status, QueryStatus::TimedOut);
        // The breaker moved BEFORE the ticket answer, so the very next
        // submission deterministically observes it open...
        assert!(matches!(
            server.submit_sparql("a", CHAIN),
            Err(ServeError::CircuitOpen { .. })
        ));
        // ...and the registry moved before the answer too (monotonic
        // counters: concurrent tests only ever add).
        assert!(
            served_handle.get() > before,
            "served counter must include the redeemed request"
        );
        assert!(amber_obs::counter("amber_serve_breaker_trips_total", &[]).get() >= 1);
        let report = server.shutdown();
        assert_eq!(report.breaker_trips, 1);
    }

    #[test]
    fn slow_query_log_captures_the_span_tree() {
        let _on = amber_obs::force_enabled(true);
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                trace: true,
                slow_query_threshold: Some(Duration::ZERO), // log every query
                ..ServeConfig::default()
            },
        );
        server.submit_sparql("a", CHAIN).unwrap().wait().unwrap();
        // The session was handed back before the answer (same contract as
        // above), so the log is already readable.
        let log = server.slow_query_log("a");
        assert_eq!(log.len(), 1, "threshold ZERO logs every query");
        let entry = &log[0];
        assert!(entry.contains("execute"), "span tree missing: {entry}");
        assert!(entry.contains("component[0]"), "{entry}");
        assert!(entry.contains("dispatch:"), "{entry}");
        assert!(entry.contains("caches:"), "{entry}");
        if amber::plan_cache_enabled() {
            assert!(entry.contains("fingerprint 0x"), "{entry}");
        }
        let report = server.shutdown();
        assert_eq!(report.served(), 1);
    }

    #[test]
    fn per_request_tracing_records_and_restores() {
        let _on = amber_obs::force_enabled(true);
        let engine = demo_engine();
        // Server-wide tracing OFF: only the traced request may record.
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        server.submit_sparql("a", CHAIN).unwrap().wait().unwrap();
        assert_eq!(
            server.last_trace("a"),
            None,
            "untraced requests must not record"
        );
        let t = server
            .submit_sparql_with("a", CHAIN, SubmitOptions::new().with_tracing(true))
            .unwrap();
        t.wait().unwrap();
        let trace = server.last_trace("a").expect("traced request recorded");
        assert!(
            trace.contains("select[3 vars]"),
            "span tree missing: {trace}"
        );
        // The knob is per-request: the next untraced request leaves the
        // ring untouched (the restore happened).
        server.submit_sparql("a", EDGE).unwrap().wait().unwrap();
        let after = server.last_trace("a").expect("ring still holds the trace");
        assert_eq!(
            after, trace,
            "tracing must have been restored off after the traced request"
        );
        server.shutdown();
    }

    #[test]
    fn serve_errors_fold_into_the_unified_taxonomy() {
        // Admission rejections → amber::Error with the shared wire
        // mapping, no serving-specific match arms needed downstream.
        let e: amber::Error = ServeError::Overloaded {
            capacity: 8,
            queued: 8,
            retry_after: Duration::from_millis(9),
        }
        .into();
        assert_eq!(e.status_code(), 503);
        assert_eq!(e.retry_after(), Some(Duration::from_millis(9)));

        let e: amber::Error = ServeError::CircuitOpen {
            cause: TripCause::TimedOut,
            retry_after: Duration::from_secs(2),
        }
        .into();
        assert_eq!(e.status_code(), 503);
        assert_eq!(e.retry_after(), Some(Duration::from_secs(2)));
        assert!(e.to_string().contains("timeouts") || e.to_string().contains("timed out"));

        let e: amber::Error = ServeError::DeadlineExpired {
            budget: Duration::from_millis(1),
            waited: Duration::from_millis(4),
        }
        .into();
        assert_eq!(e.status_code(), 504);
        assert_eq!(e.retry_after(), None);

        let e: amber::Error = ServeError::ShuttingDown.into();
        assert_eq!(e.status_code(), 503);

        let parse = amber_sparql::parse_select("nope").unwrap_err();
        let e: amber::Error = ServeError::Engine(EngineError::Sparql(parse)).into();
        assert_eq!(e.status_code(), 400);
    }

    #[test]
    fn tenants_share_plans_through_the_engine_store() {
        if !amber::plan_cache_enabled() {
            return;
        }
        let engine = demo_engine();
        let before = engine.shared_plan_stats();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        for tenant in ["a", "b", "c"] {
            server.submit_sparql(tenant, CHAIN).unwrap().wait().unwrap();
        }
        let report = server.shutdown();
        let shared = report.shared_plans;
        assert_eq!(
            shared.misses - before.misses,
            1,
            "one derivation serves all tenants: {shared:?}"
        );
        assert!(shared.hits - before.hits >= 2, "{shared:?}");
    }
}
