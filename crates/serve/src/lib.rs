#![warn(missing_docs)]
//! A concurrent, multi-tenant serving layer over one shared
//! [`AmberEngine`].
//!
//! The paper's engine answers one query at a time; a serving deployment
//! multiplexes many client streams onto one in-memory graph. This crate is
//! the thin, dependency-free layer that makes that safe and fair — a
//! thread-per-core request loop over an in-process queue, **no async
//! runtime**:
//!
//! * **shared engine, per-tenant sessions** — all tenants execute against
//!   one [`AmberEngine`] (one graph, one index set, one shared plan store,
//!   so plan derivations are paid once across the whole fleet), but each
//!   tenant owns a private [`QuerySession`] (arenas, candidate cache, plan
//!   and result caches). A tenant's requests are serialized onto its
//!   session — sessions are `&mut` state — while different tenants'
//!   requests interleave freely on the worker pool, which the concurrent
//!   [`amber_exec`](https://docs.rs) runs underneath make actually
//!   parallel;
//! * **admission control** — the server holds at most
//!   [`ServeConfig::queue_capacity`] queued requests; beyond that,
//!   [`Server::submit`] fails *immediately* with the typed
//!   [`ServeError::Overloaded`] instead of buffering unboundedly or
//!   blocking the client;
//! * **fair dispatch** — queued tenants are served round-robin (one
//!   request per turn), so a tenant with a deep backlog cannot starve
//!   light interactive tenants behind it;
//! * **panic and failure isolation** — a query that fails (or panics; the
//!   engine quarantines panics into typed
//!   [`EngineError::Internal`](amber::EngineError) values) poisons only
//!   its own [`Ticket`]; the tenant's session and every other tenant keep
//!   serving. All serving-layer locks recover from poisoning
//!   (`PoisonError::into_inner`) rather than propagating it;
//! * **graceful drain** — [`Server::shutdown`] stops admission, serves
//!   everything already queued, joins the workers, and returns a
//!   [`ServeReport`] with per-tenant counts and the aggregated cache
//!   statistics (including the zero-copy counter
//!   `result_hit_copied_bytes`, which the serving benchmark pins at 0).
//!
//! ```
//! use amber::AmberEngine;
//! use amber_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(AmberEngine::load_ntriples(
//!     "<http://e/a> <http://e/p> <http://e/b> .",
//! ).unwrap());
//! let server = Server::start(engine, ServeConfig::default());
//! let ticket = server
//!     .submit_sparql("tenant-a", "SELECT * WHERE { ?s <http://e/p> ?o . }")
//!     .unwrap();
//! let outcome = ticket.wait().unwrap();
//! assert_eq!(outcome.embedding_count, 1);
//! let report = server.shutdown();
//! assert_eq!(report.served(), 1);
//! ```

use amber::{
    AmberEngine, CacheStats, EngineError, ExecOptions, PlanCacheStats, QueryOutcome, QuerySession,
    SharedPlanStats,
};
use amber_sparql::SelectQuery;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serving worker threads (each runs the request loop; clamped to at
    /// least 1). Parallelism *within* a query is separate — it comes from
    /// the engine's execution pool via [`ServeConfig::options`].
    pub workers: usize,
    /// Admission bound: maximum requests queued (not yet dispatched)
    /// across all tenants. A full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Start with dispatch paused: requests queue up (admission still
    /// applies) until [`Server::resume`]. Lets tests and benchmarks build
    /// a deterministic backlog before any dispatch happens.
    pub paused: bool,
    /// Record the tenant of every dispatch, in order, for the
    /// [`ServeReport`] — the observable fairness is asserted on this.
    pub record_dispatch: bool,
    /// Execution options for every request; also sizes each tenant's
    /// session caches. Defaults to [`ExecOptions::batch`] (plan + result
    /// caches on — a serving deployment is exactly the repeated-query
    /// workload they exist for).
    pub options: ExecOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            paused: false,
            record_dispatch: false,
            options: ExecOptions::batch(),
        }
    }
}

/// Typed serving-layer failure. Engine failures pass through; the serving
/// layer adds only admission outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was dispatched and the engine failed it (parse error,
    /// quarantined panic, cancellation, …).
    Engine(EngineError),
    /// Rejected at admission: the server already holds `capacity` queued
    /// requests. Back off and retry; nothing was enqueued.
    Overloaded {
        /// The configured [`ServeConfig::queue_capacity`].
        capacity: usize,
    },
    /// Rejected because the server is draining for shutdown.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Overloaded { capacity } => {
                write!(f, "server overloaded: {capacity} requests already queued")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

/// One accepted request's completion slot.
struct TicketInner {
    slot: Mutex<Option<Result<QueryOutcome, ServeError>>>,
    done: Condvar,
}

/// Handle to one accepted request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let completed = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some();
        f.debug_struct("Ticket")
            .field("completed", &completed)
            .finish()
    }
}

impl Ticket {
    /// Block until the request completes and take its result. Each
    /// accepted request completes exactly once — even across shutdown,
    /// since drain serves the whole backlog before the workers exit.
    pub fn wait(self) -> Result<QueryOutcome, ServeError> {
        let mut slot = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .inner
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A queued request (tenant is the queue key, so only query + ticket).
struct Request {
    query: SelectQuery,
    ticket: Arc<TicketInner>,
}

/// Per-tenant serving state.
#[derive(Default)]
struct TenantState {
    /// FIFO of this tenant's admitted, not-yet-dispatched requests.
    queue: VecDeque<Request>,
    /// The tenant's session, present while no request of this tenant is in
    /// flight (a worker takes it for the duration of a dispatch — that
    /// hand-off is what serializes a tenant's stream onto its `&mut`
    /// session). `None` before the first dispatch completes, too.
    session: Option<QuerySession>,
    /// A request of this tenant is currently executing.
    busy: bool,
    /// Requests completed (successfully or with an engine error).
    served: u64,
}

/// Dispatcher state under the one serving-layer mutex.
struct DispatchState {
    tenants: HashMap<Arc<str>, TenantState>,
    /// Round-robin ring: tenants with queued work and no request in
    /// flight. A tenant appears at most once; it re-enters at the *back*
    /// after each dispatch, which is the entire fairness mechanism.
    rotation: VecDeque<Arc<str>>,
    /// Total queued (not yet dispatched) requests — the admission gauge.
    queued: usize,
    paused: bool,
    draining: bool,
    rejected: u64,
    dispatch_order: Vec<Arc<str>>,
}

struct ServerShared {
    state: Mutex<DispatchState>,
    /// Wakes workers: new work queued, rotation refilled, resume, drain.
    work_cv: Condvar,
}

impl ServerShared {
    fn lock(&self) -> MutexGuard<'_, DispatchState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running serving layer over one shared engine. Submission is `&self`
/// (share the server across client threads with `std::thread::scope` or an
/// `Arc`); shutdown consumes the server, so no submission can race the
/// drain.
pub struct Server {
    engine: Arc<AmberEngine>,
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
    config: ServeConfig,
}

impl Server {
    /// Spawn the serving workers and start accepting requests (paused if
    /// [`ServeConfig::paused`]).
    pub fn start(engine: Arc<AmberEngine>, config: ServeConfig) -> Self {
        let shared = Arc::new(ServerShared {
            state: Mutex::new(DispatchState {
                tenants: HashMap::new(),
                rotation: VecDeque::new(),
                queued: 0,
                paused: config.paused,
                draining: false,
                rejected: 0,
                dispatch_order: Vec::new(),
            }),
            work_cv: Condvar::new(),
        });
        let worker_count = config.workers.max(1);
        let workers = (0..worker_count)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let engine = Arc::clone(&engine);
                let options = config.options.clone();
                let record_dispatch = config.record_dispatch;
                std::thread::Builder::new()
                    .name(format!("amber-serve-{id}"))
                    .spawn(move || serve_loop(&engine, &shared, &options, record_dispatch))
                    .expect("spawn serving worker")
            })
            .collect();
        Self {
            engine,
            shared,
            workers,
            config,
        }
    }

    /// Submit one parsed query for `tenant`. Returns a [`Ticket`]
    /// immediately on admission; rejects with
    /// [`ServeError::Overloaded`] when the queue is full. Requests of one
    /// tenant complete in submission order; requests of different tenants
    /// are scheduled round-robin.
    pub fn submit(&self, tenant: &str, query: SelectQuery) -> Result<Ticket, ServeError> {
        let mut state = self.shared.lock();
        if state.draining {
            return Err(ServeError::ShuttingDown);
        }
        if state.queued >= self.config.queue_capacity {
            state.rejected += 1;
            return Err(ServeError::Overloaded {
                capacity: self.config.queue_capacity,
            });
        }
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let key: Arc<str> = match state.tenants.keys().find(|k| ***k == *tenant) {
            Some(existing) => Arc::clone(existing),
            None => Arc::from(tenant),
        };
        let entry = state.tenants.entry(Arc::clone(&key)).or_default();
        let was_idle = entry.queue.is_empty() && !entry.busy;
        entry.queue.push_back(Request {
            query,
            ticket: Arc::clone(&inner),
        });
        state.queued += 1;
        if was_idle {
            state.rotation.push_back(key);
        }
        drop(state);
        self.shared.work_cv.notify_all();
        Ok(Ticket { inner })
    }

    /// Parse SPARQL text and [`submit`](Self::submit) it. Parse errors are
    /// reported synchronously (nothing is enqueued for them).
    pub fn submit_sparql(&self, tenant: &str, sparql: &str) -> Result<Ticket, ServeError> {
        let query = amber_sparql::parse_select(sparql).map_err(EngineError::from)?;
        self.submit(tenant, query)
    }

    /// Pause dispatch: admitted requests queue up but are not started.
    /// In-flight requests finish normally.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resume dispatch after [`Server::pause`] (or a paused start).
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_cv.notify_all();
    }

    /// Requests currently queued (admitted, not yet dispatched).
    pub fn queued(&self) -> usize {
        self.shared.lock().queued
    }

    /// Stop admission, serve everything already queued (resuming dispatch
    /// if paused), join the workers, and report. Every admitted ticket is
    /// completed before this returns.
    pub fn shutdown(mut self) -> ServeReport {
        {
            let mut state = self.shared.lock();
            state.draining = true;
            // A paused server still owes answers for its backlog.
            state.paused = false;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let state = self.shared.lock();
        let mut tenants: Vec<TenantReport> = state
            .tenants
            .iter()
            .map(|(name, t)| TenantReport {
                tenant: name.to_string(),
                served: t.served,
                plan_stats: t
                    .session
                    .as_ref()
                    .map(|s| s.plan_stats())
                    .unwrap_or_default(),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut aggregate = PlanCacheStats::default();
        for tenant in &tenants {
            accumulate_cache(&mut aggregate.plans, &tenant.plan_stats.plans);
            accumulate_cache(&mut aggregate.results, &tenant.plan_stats.results);
            aggregate.result_hit_copied_bytes += tenant.plan_stats.result_hit_copied_bytes;
        }
        ServeReport {
            tenants,
            rejected: state.rejected,
            plan_stats: aggregate,
            shared_plans: self.engine.shared_plan_stats(),
            dispatch_order: state.dispatch_order.iter().map(|t| t.to_string()).collect(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; a dropped-without-shutdown server
        // still drains its backlog (every ticket is owed an answer).
        if self.workers.is_empty() {
            return;
        }
        {
            let mut state = self.shared.lock();
            state.draining = true;
            state.paused = false;
        }
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Sum `extra` into `total` (counter-wise; gauges take the sum too, since
/// per-tenant caches are disjoint).
fn accumulate_cache(total: &mut CacheStats, extra: &CacheStats) {
    total.hits += extra.hits;
    total.misses += extra.misses;
    total.bypasses += extra.bypasses;
    total.evictions += extra.evictions;
    total.entries += extra.entries;
    total.result_bytes += extra.result_bytes;
}

/// The request loop each serving worker runs: pick the next tenant off the
/// rotation, take its session, execute outside the lock, hand the session
/// back, answer the ticket.
fn serve_loop(
    engine: &AmberEngine,
    shared: &ServerShared,
    options: &ExecOptions,
    record_dispatch: bool,
) {
    loop {
        // Acquire one dispatch (or exit once the drain is complete).
        let (tenant, request, session) = {
            let mut state = shared.lock();
            loop {
                if state.draining && state.queued == 0 {
                    return;
                }
                if !state.paused {
                    if let Some(tenant) = state.rotation.pop_front() {
                        let entry = state
                            .tenants
                            .get_mut(&tenant)
                            .expect("rotation entries have tenant state");
                        let request = entry
                            .queue
                            .pop_front()
                            .expect("rotation entries have queued work");
                        entry.busy = true;
                        let session = entry.session.take();
                        state.queued -= 1;
                        if record_dispatch {
                            state.dispatch_order.push(Arc::clone(&tenant));
                        }
                        break (tenant, request, session);
                    }
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // Execute outside the serving lock — this is where concurrent
        // tenants actually overlap. A panic inside the engine is already
        // quarantined into a typed `Internal` error; the session survives.
        let mut session = session.unwrap_or_else(|| engine.create_session(options));
        let result = engine
            .execute_in_session(&request.query, options, &mut session)
            .map_err(ServeError::Engine);

        // Hand the session back and re-enter the rotation before
        // answering, so a client chaining requests observes its tenant
        // ready for the next one.
        {
            let mut state = shared.lock();
            let entry = state
                .tenants
                .get_mut(&tenant)
                .expect("tenant state outlives its dispatches");
            entry.session = Some(session);
            entry.busy = false;
            entry.served += 1;
            if !entry.queue.is_empty() {
                state.rotation.push_back(Arc::clone(&tenant));
            }
        }
        shared.work_cv.notify_all();

        let mut slot = request
            .ticket
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = Some(result);
        drop(slot);
        request.ticket.done.notify_all();
    }
}

/// Per-tenant slice of a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's identifier as passed to [`Server::submit`].
    pub tenant: String,
    /// Requests completed for this tenant (including engine errors;
    /// admission rejections are *not* served and count in
    /// [`ServeReport::rejected`]).
    pub served: u64,
    /// The tenant session's plan/result cache counters.
    pub plan_stats: PlanCacheStats,
}

/// What a drained [`Server`] observed, returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
    /// Requests rejected at admission ([`ServeError::Overloaded`]).
    pub rejected: u64,
    /// All tenants' plan/result cache counters summed — includes
    /// `result_hit_copied_bytes`, the zero-copy regression gauge.
    pub plan_stats: PlanCacheStats,
    /// The engine-wide shared plan store counters (cross-tenant plan
    /// reuse).
    pub shared_plans: SharedPlanStats,
    /// Tenant of every dispatch in dispatch order (empty unless
    /// [`ServeConfig::record_dispatch`]).
    pub dispatch_order: Vec<String>,
}

impl ServeReport {
    /// Total requests served across all tenants.
    pub fn served(&self) -> u64 {
        self.tenants.iter().map(|t| t.served).sum()
    }

    /// The served count of one tenant (0 if never seen).
    pub fn served_for(&self, tenant: &str) -> u64 {
        self.tenants
            .iter()
            .find(|t| t.tenant == tenant)
            .map_or(0, |t| t.served)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_engine() -> Arc<AmberEngine> {
        let triples = "\
<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> <http://e/c> .\n\
<http://e/c> <http://e/q> <http://e/a> .\n";
        Arc::new(AmberEngine::load_ntriples(triples).expect("demo graph parses"))
    }

    const CHAIN: &str = "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?z . }";
    const EDGE: &str = "SELECT * WHERE { ?s <http://e/q> ?o . }";

    #[test]
    fn serves_multiple_tenants_correctly() {
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        let a = server.submit_sparql("a", CHAIN).unwrap();
        let b = server.submit_sparql("b", EDGE).unwrap();
        assert_eq!(a.wait().unwrap().embedding_count, 1);
        assert_eq!(b.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.served(), 2);
        assert_eq!(report.served_for("a"), 1);
        assert_eq!(report.served_for("b"), 1);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn overload_rejects_typed_and_immediately() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                paused: true, // nothing dispatches: the queue must fill
                ..ServeConfig::default()
            },
        );
        let t1 = server.submit_sparql("a", CHAIN).unwrap();
        let t2 = server.submit_sparql("b", EDGE).unwrap();
        let rejected = server.submit_sparql("c", EDGE);
        assert_eq!(rejected.err(), Some(ServeError::Overloaded { capacity: 2 }));
        server.resume();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        let report = server.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.served(), 2);
        assert_eq!(report.served_for("c"), 0);
    }

    #[test]
    fn dispatch_is_round_robin_across_tenants() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 1, // one dispatcher → the order is deterministic
                paused: true,
                record_dispatch: true,
                ..ServeConfig::default()
            },
        );
        // A heavy tenant piles up 3 requests before two light tenants
        // submit one each.
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(server.submit_sparql("heavy", CHAIN).unwrap());
        }
        tickets.push(server.submit_sparql("light-1", EDGE).unwrap());
        tickets.push(server.submit_sparql("light-2", EDGE).unwrap());
        server.resume();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(
            report.dispatch_order,
            vec!["heavy", "light-1", "light-2", "heavy", "heavy"],
            "light tenants are served after ONE heavy request, not after its whole backlog"
        );
    }

    #[test]
    fn per_tenant_requests_complete_in_order() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
        );
        // Interleave two tenants' streams; each stream must come back in
        // submission order (tickets are redeemed in submission order and
        // each must be complete).
        let mut tickets = Vec::new();
        for _ in 0..10 {
            tickets.push(server.submit_sparql("a", CHAIN).unwrap());
            tickets.push(server.submit_sparql("b", EDGE).unwrap());
        }
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 10);
        assert_eq!(report.served_for("b"), 10);
    }

    #[test]
    fn failures_poison_only_their_ticket() {
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        // An unparseable query fails synchronously, nothing queued.
        assert!(matches!(
            server.submit_sparql("a", "SELECT nonsense"),
            Err(ServeError::Engine(_))
        ));
        // The tenant keeps serving.
        let ok = server.submit_sparql("a", CHAIN).unwrap();
        assert_eq!(ok.wait().unwrap().embedding_count, 1);
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 1);
    }

    #[test]
    fn shutdown_drains_a_paused_backlog() {
        let engine = demo_engine();
        let server = Server::start(
            Arc::clone(&engine),
            ServeConfig {
                paused: true,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|_| server.submit_sparql("a", CHAIN).unwrap())
            .collect();
        // Never resumed: shutdown itself must serve the backlog.
        let report = server.shutdown();
        assert_eq!(report.served_for("a"), 5);
        for ticket in tickets {
            assert!(ticket.wait().is_ok(), "every admitted ticket is answered");
        }
    }

    #[test]
    fn warm_tenants_hit_their_result_cache_without_copying() {
        if !amber::plan_cache_enabled() {
            return; // AMBER_PLAN_CACHE=off lane pins cache counters to zero
        }
        let engine = demo_engine();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        for _ in 0..4 {
            server.submit_sparql("a", CHAIN).unwrap().wait().unwrap();
        }
        let report = server.shutdown();
        let stats = &report.plan_stats;
        assert!(stats.results.hits >= 3, "verbatim repeats hit: {stats:?}");
        assert_eq!(
            stats.result_hit_copied_bytes, 0,
            "result-cache hits must serve shared rows, not copies"
        );
    }

    #[test]
    fn tenants_share_plans_through_the_engine_store() {
        if !amber::plan_cache_enabled() {
            return;
        }
        let engine = demo_engine();
        let before = engine.shared_plan_stats();
        let server = Server::start(Arc::clone(&engine), ServeConfig::default());
        for tenant in ["a", "b", "c"] {
            server.submit_sparql(tenant, CHAIN).unwrap().wait().unwrap();
        }
        let report = server.shutdown();
        let shared = report.shared_plans;
        assert_eq!(
            shared.misses - before.misses,
            1,
            "one derivation serves all tenants: {shared:?}"
        );
        assert!(shared.hits - before.hits >= 2, "{shared:?}");
    }
}
