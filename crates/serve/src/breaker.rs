//! Per-tenant circuit breakers.
//!
//! A tenant whose requests keep failing *hard* — quarantined panics
//! (`EngineError::Internal`) or timeouts — should stop consuming pool time
//! that healthy tenants could use. The breaker watches each tenant's
//! completion stream and, after [`BreakerConfig::failure_threshold`]
//! *consecutive* hard failures, trips into fast-fail: further submissions
//! are rejected at admission with the typed
//! [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen) (carrying
//! the trip cause and a retry-after hint) without queueing anything.
//!
//! State machine:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ────────────────────────────────▶ Open (fast-fail, cooldown)
//!     ▲                                        │ cooldown elapsed:
//!     │ probe completes                        ▼ next submit admitted
//!     │ successfully                        HalfOpen (ONE probe in flight,
//!     └──────────────────────────────────── everyone else fast-fails)
//!                  probe fails ───▶ back to Open, fresh cooldown
//! ```
//!
//! Only *hard* failures move the machine: `Internal` errors and
//! `TimedOut` outcomes. `Cancelled` and `BudgetExceeded` partials are the
//! server's own throttling (revocation, memory governance) — they neither
//! trip nor close a breaker. Any successful completion closes it.

use std::time::{Duration, Instant};

/// Breaker knobs ([`ServeConfig::breaker`](crate::ServeConfig::breaker);
/// `None` disables breakers entirely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive hard failures (quarantined panics or timeouts) that
    /// trip the tenant's breaker. Clamped to at least 1.
    pub failure_threshold: u32,
    /// How long a tripped breaker fast-fails before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    /// Trip after 5 consecutive hard failures; probe after 1 s.
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

impl BreakerConfig {
    fn threshold(&self) -> u32 {
        self.failure_threshold.max(1)
    }
}

/// The kind of hard failure that tripped (or is tripping) a breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCause {
    /// Consecutive quarantined panics (`EngineError::Internal`).
    Internal,
    /// Consecutive `QueryStatus::TimedOut` outcomes (including budgets
    /// that expired mid-execution).
    TimedOut,
}

impl std::fmt::Display for TripCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TripCause::Internal => "internal errors",
            TripCause::TimedOut => "timeouts",
        })
    }
}

/// Observable breaker state, reported per tenant in the
/// [`ServeReport`](crate::ServeReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything is admitted.
    Closed,
    /// Tripped: submissions fast-fail until the cooldown elapses.
    Open,
    /// Probing: one request is in flight; everyone else fast-fails.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Per-tenant breaker counters in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerReport {
    /// Times this tenant's breaker tripped (Closed/HalfOpen → Open).
    pub trips: u64,
    /// Submissions rejected with `CircuitOpen`.
    pub fast_fails: u64,
    /// The state at report time.
    pub state: BreakerState,
}

impl Default for BreakerReport {
    fn default() -> Self {
        Self {
            trips: 0,
            fast_fails: 0,
            state: BreakerState::Closed,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed {
        consecutive: u32,
    },
    Open {
        /// When the cooldown elapses and a probe may be admitted.
        until: Instant,
        cause: TripCause,
    },
    HalfOpen {
        cause: TripCause,
    },
}

/// What the breaker says about one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Admit normally.
    Admit,
    /// Admit as the single half-open probe.
    Probe,
    /// Reject with `CircuitOpen { cause, retry_after }`.
    FastFail {
        cause: TripCause,
        retry_after: Duration,
    },
}

/// One tenant's breaker (owned by the tenant's dispatch state, mutated
/// under the serving-layer lock).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Breaker {
    state: State,
    trips: u64,
    fast_fails: u64,
}

impl Default for Breaker {
    fn default() -> Self {
        Self {
            state: State::Closed { consecutive: 0 },
            trips: 0,
            fast_fails: 0,
        }
    }
}

impl Breaker {
    /// Admission decision for one submission at `now`.
    pub(crate) fn admit(&mut self, now: Instant) -> Admission {
        match self.state {
            State::Closed { .. } => Admission::Admit,
            State::Open { until, cause } => {
                if now >= until {
                    self.state = State::HalfOpen { cause };
                    Admission::Probe
                } else {
                    self.fast_fails += 1;
                    Admission::FastFail {
                        cause,
                        retry_after: until - now,
                    }
                }
            }
            State::HalfOpen { cause } => {
                // One probe at a time; the next retry lands after the
                // probe resolved, so hint "almost immediately".
                self.fast_fails += 1;
                Admission::FastFail {
                    cause,
                    retry_after: Duration::ZERO,
                }
            }
        }
    }

    /// A request of this tenant completed successfully: close (and reset
    /// the consecutive-failure run). In half-open state this is the probe
    /// succeeding — or a pre-trip straggler proving the tenant healthy —
    /// either way the breaker closes.
    pub(crate) fn record_success(&mut self) {
        self.state = State::Closed { consecutive: 0 };
    }

    /// A request of this tenant failed hard (quarantined panic or
    /// timeout). Returns `true` if this failure tripped the breaker open
    /// (the caller feeds the live trip counter from it).
    pub(crate) fn record_failure(
        &mut self,
        config: &BreakerConfig,
        cause: TripCause,
        now: Instant,
    ) -> bool {
        match &mut self.state {
            State::Closed { consecutive } => {
                *consecutive += 1;
                if *consecutive >= config.threshold() {
                    self.trips += 1;
                    self.state = State::Open {
                        until: now + config.cooldown,
                        cause,
                    };
                    return true;
                }
                false
            }
            State::HalfOpen { .. } => {
                // The probe (or a straggler) failed: re-open with a fresh
                // cooldown.
                self.trips += 1;
                self.state = State::Open {
                    until: now + config.cooldown,
                    cause,
                };
                true
            }
            // A straggler failing while already open changes nothing; the
            // cooldown keeps its original schedule.
            State::Open { .. } => false,
        }
    }

    /// The half-open probe never executed (deadline-shed or drained):
    /// return to open with the cooldown already elapsed, so the next
    /// submission becomes a fresh probe.
    pub(crate) fn probe_aborted(&mut self, now: Instant) {
        if let State::HalfOpen { cause } = self.state {
            self.state = State::Open { until: now, cause };
        }
    }

    pub(crate) fn state(&self) -> BreakerState {
        match self.state {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    pub(crate) fn report(&self) -> BreakerReport {
        BreakerReport {
            trips: self.trips,
            fast_fails: self.fast_fails,
            state: self.state(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(threshold: u32, cooldown: Duration) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown,
        }
    }

    #[test]
    fn trips_only_on_consecutive_failures() {
        let cfg = config(3, Duration::from_secs(60));
        let mut b = Breaker::default();
        let t = Instant::now();
        b.record_failure(&cfg, TripCause::TimedOut, t);
        b.record_failure(&cfg, TripCause::TimedOut, t);
        b.record_success(); // the run resets
        b.record_failure(&cfg, TripCause::TimedOut, t);
        b.record_failure(&cfg, TripCause::TimedOut, t);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips, 0);
        b.record_failure(&cfg, TripCause::Internal, t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn open_fast_fails_until_cooldown_then_probes_one_at_a_time() {
        let cfg = config(1, Duration::from_secs(10));
        let mut b = Breaker::default();
        let t0 = Instant::now();
        b.record_failure(&cfg, TripCause::Internal, t0);
        // Inside the cooldown: fast-fail with the remaining wait.
        match b.admit(t0 + Duration::from_secs(4)) {
            Admission::FastFail { cause, retry_after } => {
                assert_eq!(cause, TripCause::Internal);
                assert_eq!(retry_after, Duration::from_secs(6));
            }
            other => panic!("expected fast-fail, got {other:?}"),
        }
        assert_eq!(b.fast_fails, 1);
        // Cooldown elapsed: exactly one probe, everyone behind it fails.
        assert_eq!(b.admit(t0 + Duration::from_secs(10)), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(matches!(
            b.admit(t0 + Duration::from_secs(10)),
            Admission::FastFail { .. }
        ));
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let cfg = config(1, Duration::ZERO);
        let mut b = Breaker::default();
        let t = Instant::now();
        b.record_failure(&cfg, TripCause::TimedOut, t);
        assert_eq!(b.admit(t), Admission::Probe, "zero cooldown probes at once");
        b.record_failure(&cfg, TripCause::TimedOut, t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2, "a failed probe is a fresh trip");
        assert_eq!(b.admit(t), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t), Admission::Admit);
    }

    #[test]
    fn aborted_probe_reopens_for_an_immediate_retry() {
        let cfg = config(1, Duration::from_secs(10));
        let mut b = Breaker::default();
        let t = Instant::now();
        b.record_failure(&cfg, TripCause::Internal, t);
        assert_eq!(b.admit(t + Duration::from_secs(10)), Admission::Probe);
        b.probe_aborted(t + Duration::from_secs(11));
        assert_eq!(b.state(), BreakerState::Open);
        // No second cooldown: the next submit re-probes.
        assert_eq!(b.admit(t + Duration::from_secs(11)), Admission::Probe);
    }

    #[test]
    fn zero_threshold_behaves_like_one() {
        let cfg = config(0, Duration::from_secs(1));
        let mut b = Breaker::default();
        b.record_failure(&cfg, TripCause::Internal, Instant::now());
        assert_eq!(b.state(), BreakerState::Open);
    }
}
