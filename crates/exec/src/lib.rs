#![warn(missing_docs)]
//! A persistent work-stealing thread pool.
//!
//! The paper's parallel extension (§8) was first implemented as
//! fork-per-chunk: `std::thread::scope` spawns one worker per contiguous
//! chunk of the initial-candidate list, every query, and a single heavy
//! candidate serializes its whole chunk while the other workers exit early
//! and idle. This crate replaces that model with a long-lived pool the
//! matcher can *rebalance through*:
//!
//! * **per-worker LIFO deques** — each worker owns a deque; it pushes and
//!   pops at the back (freshly split subtrees stay cache-warm), thieves
//!   steal from the front (the oldest entries are the coarsest tasks);
//! * **steal-half** — a thief takes half of a victim's queue in one lock
//!   acquisition, executes the first stolen task and publishes the surplus
//!   in its own deque, so a single steal rebalances a whole backlog;
//! * **parking / wakeup** — out-of-work workers publish themselves in the
//!   [`hungry`](Scope::hungry) counter (the signal the matcher's split hook
//!   polls) and park on a condvar; task submission wakes them;
//! * **scoped, structured runs** — [`ExecPool::run`] blocks until every
//!   task (including tasks spawned by tasks) has completed, so task
//!   closures may borrow from the caller's stack, rayon-scope style;
//! * **panic quarantine** — a panicking task is trapped, the run drains,
//!   and [`ExecPool::run_trapping`] hands the first payload back as a value
//!   instead of unwinding, so a long-lived pool survives a hostile query
//!   and is immediately reusable ([`ExecPool::run`] keeps the historical
//!   rethrow behaviour for callers that want it);
//! * **process-global instance** — [`ExecPool::global`] lazily creates one
//!   pool for the whole process (workers are spawned on demand and reused),
//!   mirroring how the SIMD kernel dispatcher caches its detection result.
//!   The `AMBER_POOL` environment variable (`off`/`0`/`false`, detected
//!   once) disables pool scheduling for callers that honor
//!   [`pool_enabled`], which is what the fork-per-chunk CI fallback lane
//!   uses.
//!
//! The pool is deliberately engine-agnostic: tasks are plain closures that
//! receive a [`Scope`] (their worker slot, the hungry signal, and
//! [`Scope::spawn`] for publishing further tasks). Everything
//! matcher-specific — session cores, candidate ranges, deterministic result
//! merging — lives in `amber::parallel` on top of this API.

use amber_util::fault::{self, FaultPoint};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on worker slots (slot 0 is the caller; 1.. are pool threads).
/// Sixty-four covers every host this workspace targets; requests beyond it
/// are clamped.
pub const MAX_THREADS: usize = 64;

/// A task as stored in the deques: lifetime-erased to `'static` (see the
/// safety argument on [`Scope::spawn`]).
type BoxedTask = Box<dyn FnOnce(&Scope<'static>) + Send + 'static>;

/// Mutable pool state guarded by one mutex (the cold path: run start/stop,
/// parking). Hot-path counters are separate atomics.
struct PoolSync {
    /// Pool is shutting down (owner dropped); workers exit.
    shutdown: bool,
    /// A run is currently active.
    run_active: bool,
    /// Monotonic run id; workers join each run at most once.
    run_gen: u64,
    /// Worker slots participating in the active run (caller slot included).
    run_threads: usize,
    /// Pool worker threads spawned so far (slots `1..=spawned`).
    spawned: usize,
    /// Pool workers currently inside [`PoolInner::participate`]. The next
    /// run does not start until the previous run's participants have left,
    /// so a task can never leak across runs (worker slots index into
    /// caller-owned per-run state).
    participants: usize,
    /// Wakeup epoch: bumped whenever new work may be visible, so parked
    /// workers can distinguish "woken for work" from spurious wakeups.
    signals: u64,
}

struct PoolInner {
    /// One deque per worker slot (fixed size: stable addresses).
    queues: Vec<Mutex<VecDeque<BoxedTask>>>,
    sync: Mutex<PoolSync>,
    work_cv: Condvar,
    /// Tasks spawned but not yet completed in the active run. Zero means
    /// the run is over (tasks are the only spawners, so 0 is final).
    pending: AtomicUsize,
    /// Tasks sitting in deques (spawned, not yet picked up).
    queued: AtomicUsize,
    /// Free worker capacity: run slots *not* currently executing a task.
    /// Set to the run's thread count at run start (a slot is capacity from
    /// the moment the run opens, whether or not its thread has physically
    /// woken yet — on oversubscribed hosts workers may not get scheduled
    /// for a full timeslice, and the split signal must not depend on OS
    /// timing) and decremented around task execution. `idle > 0` is the
    /// [`Scope::hungry`] "publish a split" signal; it is only meaningful
    /// while a run is active (stale between runs, re-stored at the next
    /// run start).
    idle: AtomicUsize,
    /// First panic payload observed in a task; rethrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Per-run statistics, reset at run start.
    root_tasks: AtomicU64,
    split_tasks: AtomicU64,
    steals: AtomicU64,
    executed: Vec<AtomicU64>,
    /// Serializes runs (one scoped run at a time per pool).
    run_lock: Mutex<()>,
}

/// Counters of one [`ExecPool::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Worker slots the run was allowed to use (caller included).
    pub threads: usize,
    /// Tasks spawned by the seeding closure.
    pub root_tasks: u64,
    /// Tasks spawned from inside other tasks (subtree splits).
    pub split_tasks: u64,
    /// Successful steal events (each may move several tasks at once).
    pub steals: u64,
    /// Tasks executed per worker slot (`len == threads`).
    pub tasks_per_worker: Vec<u64>,
}

impl RunStats {
    /// Total tasks executed by the run.
    pub fn tasks(&self) -> u64 {
        self.root_tasks + self.split_tasks
    }
}

/// The capability handed to the seeding closure and to every task: its
/// worker slot, the hungry signal, and task submission.
pub struct Scope<'scope> {
    inner: &'scope PoolInner,
    slot: usize,
    /// Spawns from the seeding closure are root tasks; spawns from tasks
    /// are splits.
    seeding: bool,
    /// Invariant over `'scope` (rayon-style): prevents the compiler from
    /// shrinking or growing the lifetime tasks must outlive.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// The executing worker slot (`0..threads`; 0 is the calling thread).
    /// Each slot runs at most one task at a time, so per-slot state handed
    /// to the run (e.g. session cores) is exclusively owned for the
    /// duration of a task.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// `true` while the run has free worker capacity (slots not currently
    /// executing a task) — the cheap signal (one relaxed atomic load)
    /// cooperative producers poll before paying for a split. Deliberately
    /// *not* suppressed by queued tasks: a queued task may be arbitrarily
    /// small, so "the deque is non-empty" says nothing about whether the
    /// capacity will stay fed — producers amortize split cost against work
    /// done instead (see the matcher's split hook). On a saturated pool
    /// (every slot executing) this is `false` and no splits are paid for.
    pub fn hungry(&self) -> bool {
        self.inner.idle.load(Ordering::Relaxed) > 0
    }

    /// Submit a task to the current run. The task is pushed on this slot's
    /// own deque (LIFO end) and a parked worker, if any, is woken.
    ///
    /// ## Safety argument (lifetime erasure)
    ///
    /// The closure is boxed with bound `'scope` and transmuted to `'static`
    /// for storage. This is sound because [`ExecPool::run`] does not return
    /// until `pending` reaches zero — i.e. until every spawned closure has
    /// been executed and dropped — and `'scope` outlives that call by
    /// construction, so no task can observe a dangling borrow.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let _ = fault::inject(FaultPoint::PoolSpawn);
        let boxed: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(task);
        let erased: BoxedTask = unsafe { std::mem::transmute(boxed) };
        if self.seeding {
            self.inner.root_tasks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.split_tasks.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.pending.fetch_add(1, Ordering::Relaxed);
        self.inner.queued.fetch_add(1, Ordering::Relaxed);
        self.inner.queues[self.slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(erased);
        self.inner.bump_signal_and_notify();
    }
}

impl PoolInner {
    fn lock_sync(&self) -> MutexGuard<'_, PoolSync> {
        self.sync.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Make newly published work visible to parked workers.
    fn bump_signal_and_notify(&self) {
        let mut sync = self.lock_sync();
        sync.signals = sync.signals.wrapping_add(1);
        drop(sync);
        self.work_cv.notify_all();
    }

    /// Pop from the own deque (back = LIFO) or steal half of a victim's
    /// (front = coarsest tasks), publishing any stolen surplus.
    fn acquire(&self, slot: usize, threads: usize) -> Option<BoxedTask> {
        if let Some(task) = self.queues[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(task);
        }
        for offset in 1..threads {
            let victim = (slot + offset) % threads;
            let mut queue = self.queues[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if queue.is_empty() {
                continue;
            }
            // A chaos steal storm degrades steal-half to steal-one, so the
            // backlog is rebalanced through maximally many steal events. An
            // injected panic here runs outside the task catch_unwind, so it
            // is trapped in place (quarantined like a task panic) — letting
            // it unwind would kill the worker thread and wedge the run.
            let take = match catch_unwind(|| fault::inject(FaultPoint::PoolSteal)) {
                Ok(signal) if signal.storm => 1,
                Ok(_) => queue.len().div_ceil(2),
                Err(payload) => {
                    self.panic
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_or_insert(payload);
                    queue.len().div_ceil(2)
                }
            };
            let mut grabbed: VecDeque<BoxedTask> = queue.drain(..take).collect();
            drop(queue);
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.queued.fetch_sub(1, Ordering::Relaxed);
            let first = grabbed.pop_front().expect("take >= 1");
            if !grabbed.is_empty() {
                let mut own = self.queues[slot]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                own.extend(grabbed);
                drop(own);
                self.bump_signal_and_notify();
            }
            return Some(first);
        }
        None
    }

    /// Execute one task on `slot`, trapping panics (the first payload is
    /// rethrown by the caller once the run has drained).
    fn execute(&self, task: BoxedTask, slot: usize) {
        self.executed[slot].fetch_add(1, Ordering::Relaxed);
        let scope = Scope {
            // Erase the borrow to match `BoxedTask`'s signature; `self`
            // outlives the run (it is kept alive by the pool / worker Arcs).
            inner: unsafe { &*(self as *const PoolInner) },
            slot,
            seeding: false,
            _marker: PhantomData,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(&scope))) {
            let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
            slot.get_or_insert(payload);
        }
    }

    /// The per-run worker loop: hunt for tasks, execute, park when dry,
    /// return when the run is over. `gen` pins the worker to one run.
    fn participate(&self, slot: usize, threads: usize, gen: u64) {
        let caller = slot == 0;
        let mut seen_signals = {
            let sync = self.lock_sync();
            sync.signals
        };
        loop {
            if let Some(task) = self.acquire(slot, threads) {
                self.idle.fetch_sub(1, Ordering::Relaxed);
                self.execute(task, slot);
                let left = self.pending.fetch_sub(1, Ordering::Relaxed) - 1;
                self.idle.fetch_add(1, Ordering::Relaxed);
                if left == 0 {
                    // Run complete: wake parked participants (and the
                    // caller) so they can observe `pending == 0`.
                    self.bump_signal_and_notify();
                    if caller {
                        return;
                    }
                }
                continue;
            }
            // Out of work: park, or leave once the run is over.
            let mut sync = self.lock_sync();
            loop {
                let run_over = self.pending.load(Ordering::Relaxed) == 0
                    || (!caller && (!sync.run_active || sync.run_gen != gen));
                if run_over && (!caller || self.pending.load(Ordering::Relaxed) == 0) {
                    return;
                }
                if self.queued.load(Ordering::Relaxed) > 0 || sync.signals != seen_signals {
                    seen_signals = sync.signals;
                    break; // retry the hunt
                }
                sync = self
                    .work_cv
                    .wait(sync)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Pool worker thread body: join each run once, participate, repeat.
    fn worker_main(self: Arc<Self>, slot: usize) {
        let mut last_gen = 0u64;
        loop {
            let (gen, threads) = {
                let mut sync = self.lock_sync();
                loop {
                    if sync.shutdown {
                        return;
                    }
                    if sync.run_active && sync.run_gen != last_gen && slot < sync.run_threads {
                        sync.participants += 1;
                        break (sync.run_gen, sync.run_threads);
                    }
                    sync = self
                        .work_cv
                        .wait(sync)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            last_gen = gen;
            self.participate(slot, threads, gen);
            let mut sync = self.lock_sync();
            sync.participants -= 1;
            let drained = sync.participants == 0;
            drop(sync);
            if drained {
                self.work_cv.notify_all();
            }
        }
    }
}

/// A work-stealing pool. Most callers use the process-global
/// [`ExecPool::global`]; owned pools exist for tests and isolation.
pub struct ExecPool {
    inner: Arc<PoolInner>,
}

impl ExecPool {
    /// A fresh pool. Worker threads are spawned lazily, on the first run
    /// that needs them, and are reused (parked) between runs.
    pub fn new() -> Self {
        let inner = Arc::new(PoolInner {
            queues: (0..MAX_THREADS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sync: Mutex::new(PoolSync {
                shutdown: false,
                run_active: false,
                run_gen: 0,
                run_threads: 0,
                spawned: 0,
                participants: 0,
                signals: 0,
            }),
            work_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            panic: Mutex::new(None),
            root_tasks: AtomicU64::new(0),
            split_tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            executed: (0..MAX_THREADS).map(|_| AtomicU64::new(0)).collect(),
            run_lock: Mutex::new(()),
        });
        Self { inner }
    }

    /// The process-global pool, created on first use (workers spawn on
    /// demand as runs request them) — the cached-dispatcher pattern of the
    /// SIMD kernel layer applied to scheduling.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(ExecPool::new)
    }

    /// Run one structured, scoped job on up to `threads` worker slots
    /// (clamped to `1..=`[`MAX_THREADS`]): `seed` submits the root tasks
    /// via [`Scope::spawn`]; the calling thread participates as slot 0;
    /// the call returns — with the run's counters — only when every task,
    /// including tasks spawned by tasks, has completed. A panicking task
    /// does not abort its siblings; the first payload is rethrown here
    /// after the run drains. Runs are serialized per pool; re-entrant runs
    /// (from inside a task) would self-deadlock and must not be issued.
    pub fn run<'scope, F>(&self, threads: usize, seed: F) -> RunStats
    where
        F: FnOnce(&Scope<'scope>),
    {
        let (stats, trapped) = self.run_trapping(threads, seed);
        if let Some(payload) = trapped {
            resume_unwind(payload);
        }
        stats
    }

    /// [`ExecPool::run`] with panic *quarantine* instead of rethrow: a
    /// panicking task (or seeding closure) poisons only this run — the pool
    /// drains, stays healthy, and the first trapped payload is returned as
    /// a value for the caller to convert into a typed error. The engine
    /// uses this so one hostile query cannot unwind through a shared pool.
    pub fn run_trapping<'scope, F>(
        &self,
        threads: usize,
        seed: F,
    ) -> (RunStats, Option<Box<dyn Any + Send>>)
    where
        F: FnOnce(&Scope<'scope>),
    {
        let threads = threads.clamp(1, MAX_THREADS);
        let inner = &self.inner;
        let _run = inner
            .run_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);

        // Chaos hook for the run boundary; an injected panic aborts the run
        // before any task exists, trapped like everything else.
        if let Err(payload) = catch_unwind(|| fault::inject(FaultPoint::PoolRun)) {
            return (
                RunStats {
                    threads,
                    ..RunStats::default()
                },
                Some(payload),
            );
        }

        // Reset per-run state (quiescent: the previous run fully drained
        // before releasing the run lock).
        debug_assert_eq!(inner.pending.load(Ordering::Relaxed), 0);
        debug_assert_eq!(inner.queued.load(Ordering::Relaxed), 0);
        inner.root_tasks.store(0, Ordering::Relaxed);
        inner.split_tasks.store(0, Ordering::Relaxed);
        inner.steals.store(0, Ordering::Relaxed);
        for counter in &inner.executed[..threads] {
            counter.store(0, Ordering::Relaxed);
        }
        *inner.panic.lock().unwrap_or_else(PoisonError::into_inner) = None;

        // Make sure the pool threads for slots 1..threads exist.
        {
            let mut sync = inner.lock_sync();
            while sync.spawned + 1 < threads {
                let slot = sync.spawned + 1;
                let arc = Arc::clone(inner);
                std::thread::Builder::new()
                    .name(format!("amber-exec-{slot}"))
                    .spawn(move || arc.worker_main(slot))
                    .expect("spawn pool worker");
                sync.spawned += 1;
            }
        }

        // Seed root tasks before workers are admitted, so the first steals
        // see fully-populated deques.
        let seed_scope = Scope {
            inner: unsafe { &*(Arc::as_ptr(inner)) },
            slot: 0,
            seeding: true,
            _marker: PhantomData,
        };
        let seeded = catch_unwind(AssertUnwindSafe(|| seed(&seed_scope)));
        if let Err(payload) = seeded {
            // Abort the run before it starts: drop the queued tasks.
            for queue in &inner.queues[..threads] {
                queue.lock().unwrap_or_else(PoisonError::into_inner).clear();
            }
            inner.pending.store(0, Ordering::Relaxed);
            inner.queued.store(0, Ordering::Relaxed);
            return (
                RunStats {
                    threads,
                    ..RunStats::default()
                },
                Some(payload),
            );
        }

        // Open the run and wake the workers. From this instant every run
        // slot counts as free capacity (`idle`), whether or not its thread
        // has been scheduled yet — the split signal reflects the schedule,
        // not the host's timeslicing.
        inner.idle.store(threads, Ordering::Relaxed);
        let gen = {
            let mut sync = inner.lock_sync();
            sync.run_gen = sync.run_gen.wrapping_add(1);
            sync.run_active = true;
            sync.run_threads = threads;
            sync.signals = sync.signals.wrapping_add(1);
            sync.run_gen
        };
        inner.work_cv.notify_all();

        // Work as slot 0 until the run drains.
        inner.participate(0, threads, gen);

        // Close the run and wait for pool workers to leave it, so the next
        // run can never hand a stale worker a task meant for fewer slots.
        {
            let mut sync = inner.lock_sync();
            sync.run_active = false;
            sync.signals = sync.signals.wrapping_add(1);
            inner.work_cv.notify_all();
            while sync.participants > 0 {
                sync = inner
                    .work_cv
                    .wait(sync)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        let trapped = inner
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();

        let stats = RunStats {
            threads,
            root_tasks: inner.root_tasks.load(Ordering::Relaxed),
            split_tasks: inner.split_tasks.load(Ordering::Relaxed),
            steals: inner.steals.load(Ordering::Relaxed),
            tasks_per_worker: inner.executed[..threads]
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        };
        (stats, trapped)
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        let mut sync = self.inner.lock_sync();
        sync.shutdown = true;
        drop(sync);
        self.inner.work_cv.notify_all();
    }
}

/// Render a trapped panic payload as text: `panic!` literals and formatted
/// messages downcast to `&str`/`String`; anything else gets a placeholder.
/// Used to build typed `Internal` errors out of quarantined payloads
/// without dragging `dyn Any` through the error type (which must stay
/// `Clone + Eq`).
pub fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cached `AMBER_POOL` detection: 0 undetected, 1 off, 2 on.
static POOL_ENABLED: AtomicU8 = AtomicU8::new(0);

/// `false` when `AMBER_POOL` is set to `off`/`0`/`false` (detected once per
/// process and cached, like `AMBER_KERNELS`): the knob the fork-per-chunk
/// fallback CI lane sets. Unknown values and the unset case enable the
/// pool. Explicit scheduler overrides in `ExecOptions` take precedence over
/// this — the env var only steers auto-detection.
pub fn pool_enabled() -> bool {
    match POOL_ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let enabled = !matches!(
                std::env::var("AMBER_POOL")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "off" | "0" | "false"
            );
            POOL_ENABLED.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
            enabled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_all_root_tasks_once() {
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(4, |scope| {
            for _ in 0..32 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(stats.root_tasks, 32);
        assert_eq!(stats.split_tasks, 0);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<u64>(), 32);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(3, |scope| {
            scope.spawn(|scope| {
                for _ in 0..5 {
                    scope.spawn(|scope| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(|_| {
                            counter.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 55);
        assert_eq!(stats.root_tasks, 1);
        assert_eq!(stats.split_tasks, 10);
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = ExecPool::new();
        let data: Vec<u64> = (0..100).collect();
        let total = Mutex::new(0u64);
        pool.run(4, |scope| {
            for chunk in data.chunks(7) {
                scope.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        });
        assert_eq!(*total.lock().unwrap(), (0..100).sum::<u64>());
    }

    #[test]
    fn single_thread_run_uses_caller_only() {
        let pool = ExecPool::new();
        let main = std::thread::current().id();
        let ran_on = Mutex::new(Vec::new());
        let stats = pool.run(1, |scope| {
            for _ in 0..4 {
                scope.spawn(|scope| {
                    assert_eq!(scope.slot(), 0);
                    ran_on.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        assert!(ran_on.lock().unwrap().iter().all(|&id| id == main));
        assert_eq!(stats.tasks_per_worker, vec![4]);
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let pool = ExecPool::new();
        for round in 1..=5u32 {
            let counter = AtomicU32::new(0);
            let stats = pool.run(2, |scope| {
                for _ in 0..round {
                    scope.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), round);
            assert_eq!(stats.root_tasks, u64::from(round));
        }
    }

    #[test]
    fn slots_stay_in_range_and_exclusive() {
        // Each task records its slot; slots must be < threads. Exclusivity
        // (one task per slot at a time) is asserted with per-slot guards.
        let pool = ExecPool::new();
        let threads = 4;
        let in_flight: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
        pool.run(threads, |scope| {
            for _ in 0..64 {
                scope.spawn(|scope| {
                    let slot = scope.slot();
                    assert!(slot < 4);
                    let depth = in_flight[slot].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(depth, 0, "two tasks ran concurrently on slot {slot}");
                    std::thread::yield_now();
                    in_flight[slot].fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
    }

    #[test]
    fn panics_propagate_after_drain() {
        let pool = ExecPool::new();
        let survivors = AtomicU32::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |scope| {
                scope.spawn(|_| panic!("boom"));
                for _ in 0..8 {
                    scope.spawn(|_| {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(outcome.is_err(), "task panic must surface to the caller");
        // The pool survives the panic and keeps working.
        let counter = AtomicU32::new(0);
        pool.run(2, |scope| {
            scope.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_trapping_quarantines_and_pool_stays_healthy() {
        let pool = ExecPool::new();
        let survivors = AtomicU32::new(0);
        let (stats, trapped) = pool.run_trapping(2, |scope| {
            scope.spawn(|_| panic!("quarantine me"));
            for _ in 0..8 {
                scope.spawn(|_| {
                    survivors.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let payload = trapped.expect("panic payload is returned, not rethrown");
        assert_eq!(payload_message(payload.as_ref()), "quarantine me");
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            8,
            "siblings of a panicking task still run"
        );
        assert_eq!(stats.root_tasks, 9);
        // The same pool serves the next run cleanly.
        let counter = AtomicU32::new(0);
        let (_, trapped) = pool.run_trapping(2, |scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(trapped.is_none());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_trapping_traps_seed_panics_too() {
        let pool = ExecPool::new();
        let (stats, trapped) = pool.run_trapping(2, |scope| {
            scope.spawn(|_| {});
            panic!("seed failed");
        });
        assert_eq!(
            payload_message(trapped.expect("trapped").as_ref()),
            "seed failed"
        );
        assert_eq!(stats.tasks(), 0, "aborted run executes nothing");
        // Queues were cleared; the pool is reusable.
        let counter = AtomicU32::new(0);
        pool.run(2, |scope| {
            scope.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn payload_message_covers_common_shapes() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(payload_message(boxed.as_ref()), "literal");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(format!("formatted {}", 7));
        assert_eq!(payload_message(boxed.as_ref()), "formatted 7");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(payload_message(boxed.as_ref()), "non-string panic payload");
    }

    #[test]
    fn steal_half_rebalances_a_backlog() {
        // All root tasks land on slot 0's deque (seeding pushes to the
        // caller's queue); with more than one worker, completing them all
        // requires steals whenever a second worker participates.
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(4, |scope| {
            for _ in 0..256 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 256);
        let off_caller: u64 = stats.tasks_per_worker[1..].iter().sum();
        // On a single-core host the caller may still drain most of the
        // queue, but any off-caller execution implies at least one steal.
        if off_caller > 0 {
            assert!(stats.steals > 0, "off-caller tasks require steals");
        }
    }

    #[test]
    fn env_parse_values() {
        // Only exercises the parser logic indirectly: whatever the ambient
        // env says, the cached answer must be stable across calls.
        let first = pool_enabled();
        for _ in 0..3 {
            assert_eq!(pool_enabled(), first);
        }
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ExecPool::global() as *const ExecPool;
        let b = ExecPool::global() as *const ExecPool;
        assert_eq!(a, b);
    }
}
