#![warn(missing_docs)]
//! A persistent work-stealing thread pool with **concurrent runs**.
//!
//! The paper's parallel extension (§8) was first implemented as
//! fork-per-chunk: `std::thread::scope` spawns one worker per contiguous
//! chunk of the initial-candidate list, every query, and a single heavy
//! candidate serializes its whole chunk while the other workers exit early
//! and idle. This crate replaces that model with a long-lived pool the
//! matcher can *rebalance through*:
//!
//! * **per-worker LIFO deques** — each run slot owns a deque; a slot pushes
//!   and pops at the back (freshly split subtrees stay cache-warm), thieves
//!   steal from the front (the oldest entries are the coarsest tasks);
//! * **steal-half** — a thief takes half of a victim's queue in one lock
//!   acquisition, executes the first stolen task and publishes the surplus
//!   in its own deque, so a single steal rebalances a whole backlog;
//! * **concurrent, structured runs** — each [`ExecPool::run`] owns its own
//!   [`RunState`] (queues, slot bitmap, counters, panic quarantine);
//!   independent runs issued from different threads *interleave on the same
//!   worker threads* instead of serializing behind a pool-wide run lock.
//!   Workers roam a registry of active runs, claim a free run slot with a
//!   CAS, work it dry, release it, and move to the next run that needs
//!   help. Statistics and panic attribution stay per-run by construction;
//! * **scoped runs** — [`ExecPool::run`] blocks until every task of *its*
//!   run (including tasks spawned by tasks) has completed, so task closures
//!   may borrow from the caller's stack, rayon-scope style;
//! * **parking / wakeup** — out-of-work workers park on a pool-wide condvar
//!   behind a wakeup epoch; run registration, task submission, and run
//!   completion bump the epoch. The [`hungry`](Scope::hungry) signal the
//!   matcher's split hook polls is per-run free *capacity* (slots not
//!   currently executing), deliberately independent of OS scheduling;
//! * **panic quarantine** — a panicking task is trapped in its run, the run
//!   drains, and [`ExecPool::run_trapping`] hands the first payload back as
//!   a value instead of unwinding, so a long-lived pool survives a hostile
//!   query — and a panic in one tenant's run is invisible to every
//!   concurrent run ([`ExecPool::run`] keeps the historical rethrow
//!   behaviour for callers that want it);
//! * **process-global instance** — [`ExecPool::global`] lazily creates one
//!   pool for the whole process (workers are spawned on demand and reused),
//!   mirroring how the SIMD kernel dispatcher caches its detection result.
//!   The `AMBER_POOL` environment variable (`off`/`0`/`false`, detected
//!   once) disables pool scheduling for callers that honor
//!   [`pool_enabled`], which is what the fork-per-chunk CI fallback lane
//!   uses.
//!
//! The pool is deliberately engine-agnostic: tasks are plain closures that
//! receive a [`Scope`] (their run slot, the hungry signal, and
//! [`Scope::spawn`] for publishing further tasks). Everything
//! matcher-specific — session cores, candidate ranges, deterministic result
//! merging — lives in `amber::parallel` on top of this API.

use amber_util::fault::{self, FaultPoint};
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on run slots (slot 0 is the caller; 1.. are pool threads).
/// Sixty-four covers every host this workspace targets — and matches the
/// width of the per-run slot bitmap; requests beyond it are clamped.
pub const MAX_THREADS: usize = 64;

/// A task as stored in the deques: lifetime-erased to `'static` (see the
/// safety argument on [`Scope::spawn`]).
type BoxedTask = Box<dyn FnOnce(&Scope<'static>) + Send + 'static>;

/// Pool-wide mutable state guarded by one mutex (the cold path: worker
/// spawning, parking, shutdown). Per-run hot state lives in [`RunState`].
struct PoolSync {
    /// Pool is shutting down (owner dropped); workers exit.
    shutdown: bool,
    /// Pool worker threads spawned so far.
    spawned: usize,
    /// Wakeup epoch: bumped whenever new work may be visible (a run
    /// registered, a task spawned, a run completed), so parked workers can
    /// distinguish "woken for work" from spurious wakeups.
    signals: u64,
}

/// State shared by the pool owner, its worker threads, and every active
/// run.
struct PoolShared {
    sync: Mutex<PoolSync>,
    work_cv: Condvar,
    /// Active runs, in registration order. Workers scan this to find a run
    /// with a free slot and queued work. A run is pushed *after* seeding
    /// (so the first steals see fully-populated deques) and removed by its
    /// caller once drained.
    runs: Mutex<Vec<Arc<RunState>>>,
}

/// All state of one structured run: queues, slot ownership, counters, and
/// the panic quarantine. Created per [`ExecPool::run_trapping`] call and
/// dropped when the last `Arc` (caller or a roaming worker) lets go —
/// which is what makes concurrent runs trivially isolated: there is no
/// pool-level mutable run state to serialize over.
struct RunState {
    pool: Arc<PoolShared>,
    /// Run slots (caller included); fixed at run start.
    threads: usize,
    /// Slot-ownership bitmap: bit `i` set means run slot `i` is claimed.
    /// Bit 0 is pre-claimed by the caller; workers CAS-claim bits
    /// `1..threads`, giving each slot at most one executor at a time (the
    /// exclusivity per-slot session state relies on).
    claimed: AtomicU64,
    /// One deque per run slot (fixed size: stable addresses).
    queues: Vec<Mutex<VecDeque<BoxedTask>>>,
    /// Tasks spawned but not yet completed, plus one guard held while
    /// seeding. Zero means the run is over (tasks are the only spawners
    /// after seeding, so 0 is final).
    pending: AtomicUsize,
    /// Tasks sitting in deques (spawned, not yet picked up).
    queued: AtomicUsize,
    /// Free capacity: run slots *not* currently executing a task. Set to
    /// the run's thread count at run start (a slot is capacity from the
    /// moment the run opens, whether or not a thread has physically
    /// claimed it yet — on oversubscribed hosts workers may not get
    /// scheduled for a full timeslice, and the split signal must not
    /// depend on OS timing) and decremented around task execution.
    /// `idle > 0` is the [`Scope::hungry`] "publish a split" signal.
    idle: AtomicUsize,
    /// First panic payload observed in a task of *this* run; concurrent
    /// runs never see it.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Per-run statistics.
    root_tasks: AtomicU64,
    split_tasks: AtomicU64,
    steals: AtomicU64,
    executed: Vec<AtomicU64>,
}

/// Counters of one [`ExecPool::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Run slots the run was allowed to use (caller included).
    pub threads: usize,
    /// Tasks spawned by the seeding closure.
    pub root_tasks: u64,
    /// Tasks spawned from inside other tasks (subtree splits).
    pub split_tasks: u64,
    /// Successful steal events (each may move several tasks at once).
    pub steals: u64,
    /// Tasks executed per run slot (`len == threads`).
    pub tasks_per_worker: Vec<u64>,
}

impl RunStats {
    /// Total tasks executed by the run.
    pub fn tasks(&self) -> u64 {
        self.root_tasks + self.split_tasks
    }
}

/// The capability handed to the seeding closure and to every task: its run
/// slot, the hungry signal, and task submission.
pub struct Scope<'scope> {
    run: &'scope RunState,
    slot: usize,
    /// Spawns from the seeding closure are root tasks; spawns from tasks
    /// are splits.
    seeding: bool,
    /// Invariant over `'scope` (rayon-style): prevents the compiler from
    /// shrinking or growing the lifetime tasks must outlive.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// The executing run slot (`0..threads`; 0 is the calling thread).
    /// Each slot runs at most one task at a time — slot ownership is a CAS
    /// on the run's bitmap — so per-slot state handed to the run (e.g.
    /// session cores) is exclusively owned for the duration of a task.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// `true` while this run has free capacity (slots not currently
    /// executing a task) — the cheap signal (one relaxed atomic load)
    /// cooperative producers poll before paying for a split. Deliberately
    /// *not* suppressed by queued tasks: a queued task may be arbitrarily
    /// small, so "the deque is non-empty" says nothing about whether the
    /// capacity will stay fed — producers amortize split cost against work
    /// done instead (see the matcher's split hook). On a saturated run
    /// (every slot executing) this is `false` and no splits are paid for.
    pub fn hungry(&self) -> bool {
        self.run.idle.load(Ordering::Relaxed) > 0
    }

    /// Submit a task to the current run. The task is pushed on this slot's
    /// own deque (LIFO end) and parked workers, if any, are woken.
    ///
    /// ## Safety argument (lifetime erasure)
    ///
    /// The closure is boxed with bound `'scope` and transmuted to `'static`
    /// for storage. This is sound because [`ExecPool::run`] does not return
    /// until its run's `pending` reaches zero — i.e. until every spawned
    /// closure has been executed and dropped (or, on a seed panic, cleared
    /// from the queues) — and `'scope` outlives that call by construction,
    /// so no task can observe a dangling borrow.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let _ = fault::inject(FaultPoint::PoolSpawn);
        let boxed: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(task);
        let erased: BoxedTask = unsafe { std::mem::transmute(boxed) };
        if self.seeding {
            self.run.root_tasks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.run.split_tasks.fetch_add(1, Ordering::Relaxed);
        }
        self.run.pending.fetch_add(1, Ordering::Relaxed);
        self.run.queued.fetch_add(1, Ordering::Relaxed);
        self.run.queues[self.slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(erased);
        if !self.seeding {
            // While seeding the run is not registered yet — no worker can
            // help, so waking the pool would be noise.
            self.run.pool.bump_signal_and_notify();
        }
    }
}

impl PoolShared {
    fn lock_sync(&self) -> MutexGuard<'_, PoolSync> {
        self.sync.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Make newly published work (or a state change worth re-checking)
    /// visible to parked threads.
    fn bump_signal_and_notify(&self) {
        let mut sync = self.lock_sync();
        sync.signals = sync.signals.wrapping_add(1);
        drop(sync);
        self.work_cv.notify_all();
    }

    /// Snapshot the active-run registry.
    fn snapshot_runs(&self) -> Vec<Arc<RunState>> {
        self.runs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Ensure enough worker threads exist to cover the summed demand of
    /// all active runs (each run can use `threads - 1` workers beside its
    /// caller). Workers are global and roam between runs, so this only
    /// ever grows, up to `MAX_THREADS - 1`.
    fn ensure_workers(self: &Arc<Self>) {
        let demand: usize = self
            .snapshot_runs()
            .iter()
            .map(|run| run.threads.saturating_sub(1))
            .sum();
        let target = demand.min(MAX_THREADS - 1);
        let mut sync = self.lock_sync();
        while sync.spawned < target {
            let id = sync.spawned + 1;
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("amber-exec-{id}"))
                .spawn(move || worker_main(shared))
                .expect("spawn pool worker");
            sync.spawned += 1;
        }
    }

    /// Remove a drained run from the registry.
    fn deregister(&self, run: &Arc<RunState>) {
        let mut runs = self.runs.lock().unwrap_or_else(PoisonError::into_inner);
        runs.retain(|r| !Arc::ptr_eq(r, run));
    }
}

/// Registry handles for the pool's own metrics, resolved once: the hot
/// path only ever pays relaxed `fetch_add`s (see `docs/observability.md`).
struct PoolMetrics {
    runs: Arc<amber_obs::Counter>,
    root_tasks: Arc<amber_obs::Counter>,
    split_tasks: Arc<amber_obs::Counter>,
    steals: Arc<amber_obs::Counter>,
    run_tasks: Arc<amber_obs::Histogram>,
    parked: Arc<amber_obs::Counter>,
    roaming: Arc<amber_obs::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        runs: amber_obs::counter("amber_exec_runs_total", &[]),
        root_tasks: amber_obs::counter("amber_exec_root_tasks_total", &[]),
        split_tasks: amber_obs::counter("amber_exec_split_tasks_total", &[]),
        steals: amber_obs::counter("amber_exec_steals_total", &[]),
        run_tasks: amber_obs::histogram("amber_exec_run_tasks", &[]),
        parked: amber_obs::counter(
            "amber_exec_worker_transitions_total",
            &[("state", "parked")],
        ),
        roaming: amber_obs::counter(
            "amber_exec_worker_transitions_total",
            &[("state", "roaming")],
        ),
    })
}

/// Pool worker thread body: roam the run registry, claim a free slot on a
/// run with queued work, work it dry, release the slot, repeat; park on
/// the pool condvar when nothing anywhere needs help.
fn worker_main(shared: Arc<PoolShared>) {
    loop {
        let seen = {
            let sync = shared.lock_sync();
            if sync.shutdown {
                return;
            }
            sync.signals
        };
        let mut worked = false;
        for run in shared.snapshot_runs() {
            if run.queued.load(Ordering::Relaxed) == 0 {
                continue;
            }
            if let Some(slot) = run.claim_slot() {
                worked |= run.work(slot);
                run.release_slot(slot);
            }
        }
        if worked {
            continue;
        }
        // Nothing to do anywhere: park until the epoch moves. A task
        // spawned (or run registered) after our scan bumped the epoch
        // under the lock, so it cannot be missed — we either see
        // `signals != seen` here or get notified while waiting.
        let mut sync = shared.lock_sync();
        let mut parked = false;
        while !sync.shutdown && sync.signals == seen {
            if !parked && amber_obs::obs_enabled() {
                parked = true;
                pool_metrics().parked.inc();
            }
            sync = shared
                .work_cv
                .wait(sync)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if parked {
            // The matching roaming transition, counted even on shutdown so
            // the two series stay balanced.
            pool_metrics().roaming.inc();
        }
        if sync.shutdown {
            return;
        }
    }
}

impl RunState {
    /// CAS-claim a free worker slot (`1..threads`); `None` when the run is
    /// fully staffed. Slot 0 belongs to the caller by construction.
    fn claim_slot(&self) -> Option<usize> {
        loop {
            let current = self.claimed.load(Ordering::Relaxed);
            let free = (1..self.threads).find(|&i| current & (1u64 << i) == 0)?;
            if self
                .claimed
                .compare_exchange_weak(
                    current,
                    current | (1u64 << free),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return Some(free);
            }
        }
    }

    /// Release a previously claimed worker slot.
    fn release_slot(&self, slot: usize) {
        self.claimed.fetch_and(!(1u64 << slot), Ordering::Release);
    }

    /// Pop from the slot's own deque (back = LIFO) or steal half of a
    /// victim's (front = coarsest tasks), publishing any stolen surplus.
    /// All queues are this run's own — concurrent runs never exchange
    /// tasks.
    fn acquire(&self, slot: usize) -> Option<BoxedTask> {
        if let Some(task) = self.queues[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
        {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Some(task);
        }
        for offset in 1..self.threads {
            let victim = (slot + offset) % self.threads;
            let mut queue = self.queues[victim]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if queue.is_empty() {
                continue;
            }
            // A chaos steal storm degrades steal-half to steal-one, so the
            // backlog is rebalanced through maximally many steal events. An
            // injected panic here runs outside the task catch_unwind, so it
            // is trapped in place (quarantined like a task panic) — letting
            // it unwind would kill the worker thread and wedge the run.
            let take = match catch_unwind(|| fault::inject(FaultPoint::PoolSteal)) {
                Ok(signal) if signal.storm => 1,
                Ok(_) => queue.len().div_ceil(2),
                Err(payload) => {
                    self.panic
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_or_insert(payload);
                    queue.len().div_ceil(2)
                }
            };
            let mut grabbed: VecDeque<BoxedTask> = queue.drain(..take).collect();
            drop(queue);
            self.steals.fetch_add(1, Ordering::Relaxed);
            self.queued.fetch_sub(1, Ordering::Relaxed);
            let first = grabbed.pop_front().expect("take >= 1");
            if !grabbed.is_empty() {
                let mut own = self.queues[slot]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                own.extend(grabbed);
                drop(own);
                self.pool.bump_signal_and_notify();
            }
            return Some(first);
        }
        None
    }

    /// Execute one task on `slot`, trapping panics in this run's
    /// quarantine (the first payload is surfaced by the run's caller once
    /// the run has drained).
    fn execute(&self, task: BoxedTask, slot: usize) {
        self.executed[slot].fetch_add(1, Ordering::Relaxed);
        let scope = Scope {
            // Erase the borrow to match `BoxedTask`'s signature; the run
            // outlives the task (it is kept alive by the caller's and the
            // workers' Arcs).
            run: unsafe { &*(self as *const RunState) },
            slot,
            seeding: false,
            _marker: PhantomData,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(&scope))) {
            let mut quarantine = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
            quarantine.get_or_insert(payload);
        }
    }

    /// Drain this run from `slot` until no task is acquirable. Returns
    /// whether any task was executed. The last task completion wakes the
    /// (possibly parked) caller.
    fn work(&self, slot: usize) -> bool {
        let mut worked = false;
        while let Some(task) = self.acquire(slot) {
            worked = true;
            self.idle.fetch_sub(1, Ordering::Relaxed);
            self.execute(task, slot);
            let left = self.pending.fetch_sub(1, Ordering::AcqRel) - 1;
            self.idle.fetch_add(1, Ordering::Relaxed);
            if left == 0 {
                self.pool.bump_signal_and_notify();
            }
        }
        worked
    }

    /// The caller's participation loop (run slot 0): work, park while
    /// in-flight tasks may still spawn more, return when the run drains.
    fn caller_participate(&self) {
        loop {
            self.work(0);
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let mut sync = self.pool.lock_sync();
            loop {
                if self.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                if self.queued.load(Ordering::Relaxed) > 0 {
                    break; // retry the hunt
                }
                sync = self
                    .pool
                    .work_cv
                    .wait(sync)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// A work-stealing pool. Most callers use the process-global
/// [`ExecPool::global`]; owned pools exist for tests and isolation.
pub struct ExecPool {
    shared: Arc<PoolShared>,
}

impl ExecPool {
    /// A fresh pool. Worker threads are spawned lazily, on the first run
    /// that needs them, and are reused (parked) between runs.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                sync: Mutex::new(PoolSync {
                    shutdown: false,
                    spawned: 0,
                    signals: 0,
                }),
                work_cv: Condvar::new(),
                runs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-global pool, created on first use (workers spawn on
    /// demand as runs request them) — the cached-dispatcher pattern of the
    /// SIMD kernel layer applied to scheduling.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(ExecPool::new)
    }

    /// Run one structured, scoped job on up to `threads` run slots
    /// (clamped to `1..=`[`MAX_THREADS`]): `seed` submits the root tasks
    /// via [`Scope::spawn`]; the calling thread participates as slot 0;
    /// the call returns — with the run's counters — only when every task,
    /// including tasks spawned by tasks, has completed. A panicking task
    /// does not abort its siblings; the first payload is rethrown here
    /// after the run drains. Independent runs issued from different
    /// threads execute concurrently and interleave on the shared workers;
    /// issuing a run from *inside* a task of another run is not supported.
    pub fn run<'scope, F>(&self, threads: usize, seed: F) -> RunStats
    where
        F: FnOnce(&Scope<'scope>),
    {
        let (stats, trapped) = self.run_trapping(threads, seed);
        if let Some(payload) = trapped {
            resume_unwind(payload);
        }
        stats
    }

    /// [`ExecPool::run`] with panic *quarantine* instead of rethrow: a
    /// panicking task (or seeding closure) poisons only this run — the run
    /// drains, the pool stays healthy (concurrent runs never observe the
    /// panic), and the first trapped payload is returned as a value for
    /// the caller to convert into a typed error. The engine uses this so
    /// one hostile query cannot unwind through a shared pool.
    pub fn run_trapping<'scope, F>(
        &self,
        threads: usize,
        seed: F,
    ) -> (RunStats, Option<Box<dyn Any + Send>>)
    where
        F: FnOnce(&Scope<'scope>),
    {
        let threads = threads.clamp(1, MAX_THREADS);

        // Chaos hook for the run boundary; an injected panic aborts the run
        // before any task exists, trapped like everything else.
        if let Err(payload) = catch_unwind(|| fault::inject(FaultPoint::PoolRun)) {
            return (
                RunStats {
                    threads,
                    ..RunStats::default()
                },
                Some(payload),
            );
        }

        let run = Arc::new(RunState {
            pool: Arc::clone(&self.shared),
            threads,
            // Bit 0: the caller owns slot 0 for the whole run.
            claimed: AtomicU64::new(1),
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            // One guard held while seeding, so a racing worker can never
            // observe a transient pending == 0 mid-seed.
            pending: AtomicUsize::new(1),
            queued: AtomicUsize::new(0),
            // Every slot is free capacity from the instant the run exists —
            // the split signal reflects the schedule, not the host's
            // timeslicing.
            idle: AtomicUsize::new(threads),
            panic: Mutex::new(None),
            root_tasks: AtomicU64::new(0),
            split_tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            executed: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });

        // Seed root tasks before the run is visible to workers, so the
        // first steals see fully-populated deques.
        let seed_scope = Scope {
            run: unsafe { &*(Arc::as_ptr(&run)) },
            slot: 0,
            seeding: true,
            _marker: PhantomData,
        };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| seed(&seed_scope))) {
            // Abort the run before it starts: drop the queued tasks (they
            // borrow `'scope`, so they must not outlive this call).
            for queue in &run.queues {
                queue.lock().unwrap_or_else(PoisonError::into_inner).clear();
            }
            return (
                RunStats {
                    threads,
                    ..RunStats::default()
                },
                Some(payload),
            );
        }
        let seeded = run.pending.fetch_sub(1, Ordering::AcqRel) - 1;

        if seeded > 0 && threads > 1 {
            // Open the run to the workers and make sure enough exist.
            {
                let mut runs = self
                    .shared
                    .runs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                runs.push(Arc::clone(&run));
            }
            self.shared.ensure_workers();
            self.shared.bump_signal_and_notify();

            // Work as slot 0 until the run drains, then close it.
            run.caller_participate();
            self.shared.deregister(&run);
        } else if seeded > 0 {
            // Single-slot run: never registered, the caller drains its own
            // queue inline — all tasks execute on the calling thread.
            run.work(0);
            debug_assert_eq!(run.pending.load(Ordering::Relaxed), 0);
        }

        let trapped = run
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();

        let stats = RunStats {
            threads,
            root_tasks: run.root_tasks.load(Ordering::Relaxed),
            split_tasks: run.split_tasks.load(Ordering::Relaxed),
            steals: run.steals.load(Ordering::Relaxed),
            tasks_per_worker: run
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        };
        if amber_obs::obs_enabled() {
            let m = pool_metrics();
            m.runs.inc();
            m.root_tasks.add(stats.root_tasks);
            m.split_tasks.add(stats.split_tasks);
            m.steals.add(stats.steals);
            m.run_tasks.observe(stats.tasks());
        }
        (stats, trapped)
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        let mut sync = self.shared.lock_sync();
        sync.shutdown = true;
        drop(sync);
        self.shared.work_cv.notify_all();
    }
}

/// Render a trapped panic payload as text: `panic!` literals and formatted
/// messages downcast to `&str`/`String`; anything else gets a placeholder.
/// Used to build typed `Internal` errors out of quarantined payloads
/// without dragging `dyn Any` through the error type (which must stay
/// `Clone + Eq`).
pub fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cached `AMBER_POOL` detection: 0 undetected, 1 off, 2 on.
static POOL_ENABLED: AtomicU8 = AtomicU8::new(0);

/// `false` when `AMBER_POOL` is set to `off`/`0`/`false` (detected once per
/// process and cached, like `AMBER_KERNELS`): the knob the fork-per-chunk
/// fallback CI lane sets. Unknown values and the unset case enable the
/// pool. Explicit scheduler overrides in `ExecOptions` take precedence over
/// this — the env var only steers auto-detection.
pub fn pool_enabled() -> bool {
    match POOL_ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let enabled = !matches!(
                std::env::var("AMBER_POOL")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "off" | "0" | "false"
            );
            POOL_ENABLED.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
            enabled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn runs_all_root_tasks_once() {
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(4, |scope| {
            for _ in 0..32 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(stats.root_tasks, 32);
        assert_eq!(stats.split_tasks, 0);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<u64>(), 32);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(3, |scope| {
            scope.spawn(|scope| {
                for _ in 0..5 {
                    scope.spawn(|scope| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(|_| {
                            counter.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 55);
        assert_eq!(stats.root_tasks, 1);
        assert_eq!(stats.split_tasks, 10);
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = ExecPool::new();
        let data: Vec<u64> = (0..100).collect();
        let total = Mutex::new(0u64);
        pool.run(4, |scope| {
            for chunk in data.chunks(7) {
                scope.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    *total.lock().unwrap() += sum;
                });
            }
        });
        assert_eq!(*total.lock().unwrap(), (0..100).sum::<u64>());
    }

    #[test]
    fn single_thread_run_uses_caller_only() {
        let pool = ExecPool::new();
        let main = std::thread::current().id();
        let ran_on = Mutex::new(Vec::new());
        let stats = pool.run(1, |scope| {
            for _ in 0..4 {
                scope.spawn(|scope| {
                    assert_eq!(scope.slot(), 0);
                    ran_on.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        assert!(ran_on.lock().unwrap().iter().all(|&id| id == main));
        assert_eq!(stats.tasks_per_worker, vec![4]);
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let pool = ExecPool::new();
        for round in 1..=5u32 {
            let counter = AtomicU32::new(0);
            let stats = pool.run(2, |scope| {
                for _ in 0..round {
                    scope.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), round);
            assert_eq!(stats.root_tasks, u64::from(round));
        }
    }

    #[test]
    fn slots_stay_in_range_and_exclusive() {
        // Each task records its slot; slots must be < threads. Exclusivity
        // (one task per slot at a time) is asserted with per-slot guards.
        let pool = ExecPool::new();
        let threads = 4;
        let in_flight: Vec<AtomicU32> = (0..threads).map(|_| AtomicU32::new(0)).collect();
        pool.run(threads, |scope| {
            for _ in 0..64 {
                scope.spawn(|scope| {
                    let slot = scope.slot();
                    assert!(slot < 4);
                    let depth = in_flight[slot].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(depth, 0, "two tasks ran concurrently on slot {slot}");
                    std::thread::yield_now();
                    in_flight[slot].fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
    }

    #[test]
    fn panics_propagate_after_drain() {
        let pool = ExecPool::new();
        let survivors = AtomicU32::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |scope| {
                scope.spawn(|_| panic!("boom"));
                for _ in 0..8 {
                    scope.spawn(|_| {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(outcome.is_err(), "task panic must surface to the caller");
        // The pool survives the panic and keeps working.
        let counter = AtomicU32::new(0);
        pool.run(2, |scope| {
            scope.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_trapping_quarantines_and_pool_stays_healthy() {
        let pool = ExecPool::new();
        let survivors = AtomicU32::new(0);
        let (stats, trapped) = pool.run_trapping(2, |scope| {
            scope.spawn(|_| panic!("quarantine me"));
            for _ in 0..8 {
                scope.spawn(|_| {
                    survivors.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let payload = trapped.expect("panic payload is returned, not rethrown");
        assert_eq!(payload_message(payload.as_ref()), "quarantine me");
        assert_eq!(
            survivors.load(Ordering::Relaxed),
            8,
            "siblings of a panicking task still run"
        );
        assert_eq!(stats.root_tasks, 9);
        // The same pool serves the next run cleanly.
        let counter = AtomicU32::new(0);
        let (_, trapped) = pool.run_trapping(2, |scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(trapped.is_none());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn run_trapping_traps_seed_panics_too() {
        let pool = ExecPool::new();
        let (stats, trapped) = pool.run_trapping(2, |scope| {
            scope.spawn(|_| {});
            panic!("seed failed");
        });
        assert_eq!(
            payload_message(trapped.expect("trapped").as_ref()),
            "seed failed"
        );
        assert_eq!(stats.tasks(), 0, "aborted run executes nothing");
        // Queues were cleared; the pool is reusable.
        let counter = AtomicU32::new(0);
        pool.run(2, |scope| {
            scope.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn payload_message_covers_common_shapes() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(payload_message(boxed.as_ref()), "literal");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(format!("formatted {}", 7));
        assert_eq!(payload_message(boxed.as_ref()), "formatted 7");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(payload_message(boxed.as_ref()), "non-string panic payload");
    }

    #[test]
    fn steal_half_rebalances_a_backlog() {
        // All root tasks land on slot 0's deque (seeding pushes to the
        // caller's queue); with more than one worker, completing them all
        // requires steals whenever a second worker participates.
        let pool = ExecPool::new();
        let counter = AtomicU32::new(0);
        let stats = pool.run(4, |scope| {
            for _ in 0..256 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 256);
        let off_caller: u64 = stats.tasks_per_worker[1..].iter().sum();
        // On a single-core host the caller may still drain most of the
        // queue, but any off-caller execution implies at least one steal.
        if off_caller > 0 {
            assert!(stats.steals > 0, "off-caller tasks require steals");
        }
    }

    #[test]
    fn independent_runs_interleave_on_one_pool() {
        // The run_lock regression test: two runs issued from two threads
        // against ONE pool must overlap in time. Each run's only task
        // blocks at a rendezvous until the other run's task has started —
        // under run-serializing scheduling the second run can never start,
        // the rendezvous times out, and the assertion fires (rather than
        // hanging the suite).
        let pool = ExecPool::new();
        let started = Mutex::new(0u32);
        let both_started = Condvar::new();
        let rendezvous = || {
            pool.run(2, |scope| {
                scope.spawn(|_| {
                    let mut n = started.lock().unwrap();
                    *n += 1;
                    both_started.notify_all();
                    let (_guard, timeout) = both_started
                        .wait_timeout_while(n, Duration::from_secs(10), |n| *n < 2)
                        .unwrap();
                    assert!(
                        !timeout.timed_out(),
                        "two independent runs never overlapped on the shared pool"
                    );
                });
            });
        };
        std::thread::scope(|s| {
            s.spawn(rendezvous);
            s.spawn(rendezvous);
        });
    }

    #[test]
    fn concurrent_runs_keep_stats_and_panics_separate() {
        // Two overlapping runs: one is poisoned by a panicking task, the
        // other must drain cleanly with its own counters — quarantine and
        // attribution are per-run, not per-pool.
        let pool = ExecPool::new();
        let clean_counter = AtomicU32::new(0);
        std::thread::scope(|s| {
            let poisoned = s.spawn(|| {
                pool.run_trapping(2, |scope| {
                    for i in 0..8 {
                        scope.spawn(move |_| {
                            if i == 3 {
                                panic!("poison one run only");
                            }
                        });
                    }
                })
            });
            let clean = s.spawn(|| {
                pool.run_trapping(2, |scope| {
                    for _ in 0..16 {
                        scope.spawn(|_| {
                            clean_counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            });
            let (poisoned_stats, trapped) = poisoned.join().unwrap();
            let (clean_stats, clean_trapped) = clean.join().unwrap();
            assert_eq!(
                payload_message(trapped.expect("the panic is trapped").as_ref()),
                "poison one run only"
            );
            assert!(
                clean_trapped.is_none(),
                "a concurrent run must never observe another run's panic"
            );
            assert_eq!(poisoned_stats.root_tasks, 8);
            assert_eq!(clean_stats.root_tasks, 16);
            assert_eq!(clean_counter.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn env_parse_values() {
        // Only exercises the parser logic indirectly: whatever the ambient
        // env says, the cached answer must be stable across calls.
        let first = pool_enabled();
        for _ in 0..3 {
            assert_eq!(pool_enabled(), first);
        }
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ExecPool::global() as *const ExecPool;
        let b = ExecPool::global() as *const ExecPool;
        assert_eq!(a, b);
    }
}
