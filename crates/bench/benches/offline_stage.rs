//! Offline-stage microbenchmarks (Table 5's quantities): multigraph
//! database construction and per-index build time for each benchmark.

use amber_datagen::Benchmark;
use amber_index::{AttributeIndex, IndexSet, NeighborhoodIndex, SignatureIndex};
use amber_multigraph::RdfGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn offline_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    for bench in Benchmark::ALL {
        let triples = bench.generate(1, 2016);
        group.bench_with_input(
            BenchmarkId::new("database_build", bench.name()),
            &triples,
            |b, triples| b.iter(|| black_box(RdfGraph::from_triples(black_box(triples)))),
        );
        let rdf = RdfGraph::from_triples(&triples);
        group.bench_with_input(
            BenchmarkId::new("index_ensemble_build", bench.name()),
            &rdf,
            |b, rdf| b.iter(|| black_box(IndexSet::build(black_box(rdf)))),
        );
        group.bench_with_input(
            BenchmarkId::new("attribute_index", bench.name()),
            &rdf,
            |b, rdf| b.iter(|| black_box(AttributeIndex::build(black_box(rdf)))),
        );
        group.bench_with_input(
            BenchmarkId::new("signature_index", bench.name()),
            &rdf,
            |b, rdf| b.iter(|| black_box(SignatureIndex::build(black_box(rdf.graph())))),
        );
        group.bench_with_input(
            BenchmarkId::new("neighborhood_index", bench.name()),
            &rdf,
            |b, rdf| b.iter(|| black_box(NeighborhoodIndex::build(black_box(rdf.graph())))),
        );
    }
    group.finish();
}

criterion_group!(benches, offline_stage);
criterion_main!(benches);
