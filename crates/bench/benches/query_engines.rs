//! Engine comparison microbenchmarks — the criterion-side counterpart of
//! Figures 6–11: star and complex workload cells on each benchmark, one
//! measurement per engine. (The `experiments` binary produces the full
//! sweeps with timeout/robustness accounting; these benches track the
//! per-query latency of the *answerable* cells across code changes.)

use amber::ExecOptions;
use amber_baselines::all_engines;
use amber_datagen::{Benchmark, GeneratedQuery, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_multigraph::RdfGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn workload(
    rdf: &RdfGraph,
    shape: QueryShape,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<GeneratedQuery> {
    WorkloadGenerator::new(rdf, seed).generate_many(&WorkloadConfig::new(shape, size), count)
}

fn query_engines(c: &mut Criterion) {
    // LUBM keeps the baselines answerable at bench sizes.
    let rdf = Arc::new(RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016)));
    let engines = all_engines(Arc::clone(&rdf));
    // A short budget keeps pathological cells bounded inside criterion.
    let options = ExecOptions::benchmark(Duration::from_millis(250));

    for (shape, size) in [
        (QueryShape::Star, 10),
        (QueryShape::Star, 30),
        (QueryShape::Complex, 10),
        (QueryShape::Complex, 20),
    ] {
        let queries = workload(&rdf, shape, size, 5, 99);
        if queries.is_empty() {
            continue;
        }
        let mut group = c.benchmark_group(format!("{}_{size}", shape.name()));
        group.sample_size(10);
        for engine in &engines {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), size),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        for q in queries {
                            let out = engine
                                .execute_query(black_box(&q.query), &options)
                                .expect("executes");
                            black_box(out.embedding_count);
                        }
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, query_engines);
criterion_main!(benches);
