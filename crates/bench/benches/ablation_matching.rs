//! Matching-strategy ablations:
//!
//! * `decomposition` — AMbER's core–satellite batch resolution (Lemma 2)
//!   vs the Backtracking baseline that enumerates every degree-1 vertex
//!   explicitly, on star queries (where the paper's win is largest);
//! * `ordering` — the `(r1, r2)` heuristic of §5.3 vs a reversed core
//!   order, holding everything else fixed;
//! * `parallel` — the §8 future-work extension: 1 vs 4 worker threads;
//! * `probe_api` — the zero-allocation borrowed probe path
//!   (`NeighborhoodIndex::probe` + reused spill buffer) vs the owned
//!   `neighbors` path that allocates a fresh vector per probe, replayed
//!   over the probe stream of a synthetic multi-edge workload.

use amber::matcher::{ComponentMatcher, MatchConfig};
use amber::{AmberEngine, ExecOptions, SparqlEngine};
use amber_baselines::BacktrackingEngine;
use amber_datagen::{Benchmark, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_index::IndexSet;
use amber_multigraph::{QueryGraph, RdfGraph};
use amber_util::Deadline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn decomposition_ablation(c: &mut Criterion) {
    let rdf = Arc::new(RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016)));
    let amber = AmberEngine::from_graph(Arc::clone(&rdf));
    let backtracking = BacktrackingEngine::new(Arc::clone(&rdf));
    let queries = WorkloadGenerator::new(&rdf, 5)
        .generate_many(&WorkloadConfig::new(QueryShape::Star, 12), 5);
    let options = ExecOptions::benchmark(Duration::from_millis(250));

    let mut group = c.benchmark_group("decomposition_star12");
    group.sample_size(10);
    group.bench_function("amber_satellites", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    amber
                        .execute_query(&q.query, &options)
                        .unwrap()
                        .embedding_count,
                );
            }
        })
    });
    group.bench_function("backtracking_enumerate", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(
                    backtracking
                        .execute_query(&q.query, &options)
                        .unwrap()
                        .embedding_count,
                );
            }
        })
    });
    group.finish();
}

fn ordering_ablation(c: &mut Criterion) {
    let rdf = RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016));
    let index = IndexSet::build(&rdf);
    let queries = WorkloadGenerator::new(&rdf, 17)
        .generate_many(&WorkloadConfig::new(QueryShape::Complex, 12), 5);

    let prepared: Vec<QueryGraph> = queries
        .iter()
        .map(|q| QueryGraph::build(&q.query, &rdf).unwrap())
        .filter(|qg| !qg.is_unsatisfiable())
        .collect();

    let run_with = |reverse: bool| {
        for qg in &prepared {
            for component in qg.connected_components() {
                let matcher = if reverse {
                    let paper = ComponentMatcher::new(qg, rdf.graph(), &index, &component);
                    let mut order = paper.core_order().to_vec();
                    // Reverse, then rotate until the prefix stays connected
                    // (a worst-ish legal order).
                    order.reverse();
                    let connected_order = make_connected(qg, order);
                    ComponentMatcher::new_with_order(
                        qg,
                        rdf.graph(),
                        &index,
                        &component,
                        connected_order,
                    )
                } else {
                    ComponentMatcher::new(qg, rdf.graph(), &index, &component)
                };
                let deadline = Deadline::new(Some(Duration::from_millis(250)));
                let result = matcher.run(&MatchConfig::new(&deadline, Some(0)));
                black_box(result.count);
            }
        }
    };

    let mut group = c.benchmark_group("ordering_complex12");
    group.sample_size(10);
    group.bench_function("paper_r1_r2", |b| b.iter(|| run_with(false)));
    group.bench_function("reversed", |b| b.iter(|| run_with(true)));
    group.finish();
}

/// Greedily permute `wish` into an order whose every element touches the
/// prefix (required by the matcher).
fn make_connected(
    qg: &QueryGraph,
    wish: Vec<amber_multigraph::QVertexId>,
) -> Vec<amber_multigraph::QVertexId> {
    let mut remaining = wish;
    let mut order = vec![remaining.remove(0)];
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&u| qg.adjacency(u).iter().any(|a| order.contains(&a.neighbor)))
            .unwrap_or(0);
        order.push(remaining.remove(pos));
    }
    order
}

fn parallel_ablation(c: &mut Criterion) {
    // Parallel matching amortizes its per-query thread-spawn cost only on
    // heavy queries (sub-millisecond queries get slower — measured and
    // expected), so this ablation picks the heaviest answerable workload:
    // complex walks on LUBM, whose embedding counts are large.
    let rdf = Arc::new(RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016)));
    let engine = AmberEngine::from_graph(Arc::clone(&rdf));
    let all = WorkloadGenerator::new(&rdf, 23)
        .generate_many(&WorkloadConfig::new(QueryShape::Complex, 16), 10);
    // Keep the queries that take ≥ 5 ms sequentially and still finish.
    let probe = ExecOptions::benchmark(Duration::from_secs(2));
    let queries: Vec<_> = all
        .into_iter()
        .filter(|q| {
            let out = engine.execute_parsed(&q.query, &probe).unwrap();
            !out.timed_out() && out.elapsed.as_millis() >= 5
        })
        .take(2)
        .collect();
    if queries.is_empty() {
        return; // nothing heavy enough at this scale
    }

    let mut group = c.benchmark_group("parallel_heavy_complex16");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let options = ExecOptions::benchmark(Duration::from_secs(2)).with_threads(threads);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(
                        engine
                            .execute_parsed(&q.query, &options)
                            .unwrap()
                            .embedding_count,
                    );
                }
            })
        });
    }
    group.finish();
}

fn probe_api_ablation(c: &mut Criterion) {
    use amber_datagen::synthetic::{self, SyntheticConfig};
    use amber_multigraph::{Direction, EdgeTypeId, VertexId};

    // A dense multi-edge graph: few predicates over many entities, so
    // vertex pairs routinely carry parallel edge types and multi-type
    // probes have non-trivial intersections.
    let config = SyntheticConfig {
        entity_namespace: "http://probe/e/".into(),
        predicate_namespace: "http://probe/p/".into(),
        entities_per_scale: 4_000,
        resource_predicates: 8,
        literal_predicates: 4,
        mean_out_degree: 8.0,
        attachment_bias: 0.8,
        predicate_skew: 1.0,
        attribute_probability: 0.4,
        max_attributes: 3,
        literal_values: 40,
    };
    let rdf = RdfGraph::from_triples(&synthetic::generate(&config, 2024));
    let graph = rdf.graph();
    let index = IndexSet::build(&rdf);
    let n = &index.neighborhood;

    // The replayed probe stream mirrors what the matcher issues: mostly
    // single-type probes, plus the multi-type probes of parallel edges.
    let mut probes: Vec<(VertexId, Direction, Vec<EdgeTypeId>)> = Vec::new();
    for v in graph.vertices() {
        for direction in [Direction::Incoming, Direction::Outgoing] {
            for entry in graph.edges(v, direction) {
                let types = entry.types.types();
                probes.push((v, direction, vec![types[0]]));
                if types.len() >= 2 {
                    probes.push((v, direction, types.to_vec()));
                }
            }
        }
    }

    let mut group = c.benchmark_group("probe_api_multi_edge");
    group.sample_size(20);
    group.bench_function("owned_neighbors", |b| {
        b.iter(|| {
            let mut touched = 0usize;
            for (v, direction, types) in &probes {
                touched += black_box(n.neighbors(*v, *direction, types)).len();
            }
            black_box(touched)
        })
    });
    group.bench_function("borrowed_probe", |b| {
        let mut spill = Vec::new();
        b.iter(|| {
            let mut touched = 0usize;
            for (v, direction, types) in &probes {
                let result = n.probe(*v, *direction, types, &mut spill);
                touched += black_box(result.as_slice(&spill)).len();
            }
            black_box(touched)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    decomposition_ablation,
    ordering_ablation,
    parallel_ablation,
    probe_api_ablation
);
criterion_main!(benches);
