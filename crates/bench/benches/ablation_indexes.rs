//! Index ablations (DESIGN.md): how much of AMbER's speed comes from each
//! structure of `I = {A, S, N}`?
//!
//! * `sindex/rtree` vs `sindex/linear_scan` — the R-tree's pruning value
//!   over a flat synopsis table (same candidates either way, Lemma 1);
//! * `sindex/no_pruning` — seeding the matcher with *all* vertices instead
//!   of the synopsis candidates (what Algorithm 3 would cost without `S`);
//! * `otil/indexed` vs `otil/adjacency_scan` — `QueryNeighIndex` through
//!   the per-type inverted lists vs filtering the raw adjacency.

use amber_datagen::Benchmark;
use amber_index::{NeighborhoodIndex, SignatureIndex};
use amber_multigraph::{Direction, EdgeTypeId, RdfGraph, VertexSignature};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn signature_index_ablation(c: &mut Criterion) {
    let rdf = RdfGraph::from_triples(&Benchmark::Dbpedia.generate(1, 2016));
    let graph = rdf.graph();
    let index = SignatureIndex::build(graph);
    // Query synopses: the signatures of a spread of real vertices (these
    // are what query vertices look like).
    let queries: Vec<_> = graph
        .vertices()
        .step_by(97)
        .map(|v| VertexSignature::of_data_vertex(graph, v).query_synopsis())
        .take(50)
        .collect();

    let mut group = c.benchmark_group("sindex");
    group.sample_size(10);
    group.bench_function("rtree", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.candidates(black_box(q)));
            }
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.candidates_linear(black_box(q)));
            }
        })
    });
    group.finish();
}

fn otil_ablation(c: &mut Criterion) {
    let rdf = RdfGraph::from_triples(&Benchmark::Yago.generate(1, 2016));
    let graph = rdf.graph();
    let n = NeighborhoodIndex::build(graph);
    // Probe a spread of (vertex, direction, type) combinations.
    let probes: Vec<_> = graph
        .vertices()
        .step_by(13)
        .take(200)
        .flat_map(|v| {
            [
                (v, Direction::Incoming, EdgeTypeId(3)),
                (v, Direction::Outgoing, EdgeTypeId(7)),
            ]
        })
        .collect();

    let mut group = c.benchmark_group("otil");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            for &(v, dir, t) in &probes {
                black_box(n.neighbors(v, dir, &[t]));
            }
        })
    });
    group.bench_function("adjacency_scan", |b| {
        b.iter(|| {
            for &(v, dir, t) in &probes {
                let scan: Vec<_> = graph
                    .edges(v, dir)
                    .iter()
                    .filter(|e| e.types.contains(t))
                    .map(|e| e.neighbor)
                    .collect();
                black_box(scan);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, signature_index_ablation, otil_ablation);
criterion_main!(benches);
