//! Workload execution over the engine line-up.

use amber::{ExecOptions, SparqlEngine};
use amber_datagen::{Benchmark, GeneratedQuery};
use amber_multigraph::RdfGraph;
use amber_util::stats::{percentage, Summary};
use std::sync::Arc;
use std::time::Duration;

/// Harness-wide configuration (scales the paper's setup down to one
/// machine; `--paper-scale` raises it).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset scale factor (see [`Benchmark::generate`]).
    pub scale: u32,
    /// RNG seed for data + workload generation.
    pub seed: u64,
    /// Queries per (shape, size) cell. The paper uses 200.
    pub queries_per_size: usize,
    /// Query sizes to sweep. The paper uses 10..=50 step 10.
    pub sizes: Vec<usize>,
    /// Per-query wall-clock budget. The paper uses 60 s.
    pub timeout: Duration,
    /// Worker threads for AMbER's parallel extension (1 = paper algorithm).
    pub threads: usize,
    /// Engine-name filter (empty = all engines).
    pub engines: Vec<String>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: 1,
            seed: 2016,
            queries_per_size: 10,
            sizes: vec![10, 20, 30, 40, 50],
            timeout: Duration::from_millis(1_000),
            threads: 1,
            engines: Vec::new(),
        }
    }
}

impl HarnessConfig {
    /// Approach the paper's setup (large data, 200 queries, 60 s budget).
    /// Expect hours of wall-clock, as the authors did.
    pub fn paper_scale(mut self) -> Self {
        self.scale = 20;
        self.queries_per_size = 200;
        self.timeout = Duration::from_secs(60);
        self
    }

    fn engine_enabled(&self, name: &str) -> bool {
        self.engines.is_empty() || self.engines.iter().any(|e| e.eq_ignore_ascii_case(name))
    }
}

/// One engine's aggregate over a workload cell — exactly what the paper
/// plots: average time over *answered* queries plus the percentage of
/// unanswered ones.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Engine display name.
    pub engine: String,
    /// Mean milliseconds over answered queries (`NaN` if none answered).
    pub avg_ms: f64,
    /// Median milliseconds over answered queries.
    pub median_ms: f64,
    /// 95th percentile milliseconds over answered queries.
    pub p95_ms: f64,
    /// % of queries not answered within the budget (the robustness metric).
    pub unanswered_pct: f64,
    /// Number of answered queries.
    pub answered: usize,
    /// Workload size.
    pub total: usize,
    /// Total embeddings across answered queries (sanity/agreement signal).
    pub total_embeddings: u128,
}

/// The result of one workload cell across all engines.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Rows, in engine line-up order.
    pub rows: Vec<EngineRow>,
}

/// Generate a benchmark's data and wrap it for engine sharing.
pub fn load_benchmark(benchmark: Benchmark, config: &HarnessConfig) -> Arc<RdfGraph> {
    let triples = benchmark.generate(config.scale, config.seed);
    Arc::new(RdfGraph::from_triples(&triples))
}

/// Instantiate the configured engines over a shared graph.
pub fn build_engines(
    rdf: Arc<RdfGraph>,
    config: &HarnessConfig,
) -> Vec<Box<dyn SparqlEngine + Send + Sync>> {
    amber_baselines::all_engines(rdf)
        .into_iter()
        .filter(|e| config.engine_enabled(e.name()))
        .collect()
}

/// Run a workload on one engine, collecting per-query times and the
/// unanswered percentage.
pub fn run_engine(
    engine: &dyn SparqlEngine,
    queries: &[GeneratedQuery],
    config: &HarnessConfig,
) -> EngineRow {
    let options = ExecOptions::benchmark(config.timeout).with_threads(config.threads);
    let mut answered_ms: Vec<f64> = Vec::with_capacity(queries.len());
    let mut total_embeddings: u128 = 0;
    for q in queries {
        match engine.execute_query(&q.query, &options) {
            Ok(outcome) if !outcome.timed_out() => {
                answered_ms.push(outcome.elapsed.as_secs_f64() * 1e3);
                total_embeddings = total_embeddings.saturating_add(outcome.embedding_count);
            }
            Ok(_) => {} // unanswered within the budget
            Err(e) => panic!(
                "{} failed on generated query: {e}\n{}",
                engine.name(),
                q.text
            ),
        }
    }
    let summary = Summary::of(&answered_ms);
    EngineRow {
        engine: engine.name().to_string(),
        avg_ms: summary.mean,
        median_ms: summary.median,
        p95_ms: summary.p95,
        unanswered_pct: percentage(queries.len() - answered_ms.len(), queries.len()),
        answered: answered_ms.len(),
        total: queries.len(),
        total_embeddings,
    }
}

/// Run a workload cell over every configured engine.
pub fn run_workload(
    engines: &[Box<dyn SparqlEngine + Send + Sync>],
    queries: &[GeneratedQuery],
    config: &HarnessConfig,
) -> WorkloadOutcome {
    WorkloadOutcome {
        rows: engines
            .iter()
            .map(|e| run_engine(e.as_ref(), queries, config))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amber_datagen::{QueryShape, WorkloadConfig, WorkloadGenerator};

    #[test]
    fn small_cell_runs_all_engines() {
        let config = HarnessConfig {
            scale: 1,
            queries_per_size: 2,
            sizes: vec![5],
            timeout: Duration::from_secs(5),
            ..HarnessConfig::default()
        };
        let rdf = load_benchmark(Benchmark::Lubm, &config);
        let engines = build_engines(Arc::clone(&rdf), &config);
        assert_eq!(engines.len(), 4);

        let mut gen = WorkloadGenerator::new(&rdf, config.seed);
        let queries = gen.generate_many(&WorkloadConfig::new(QueryShape::Star, 5), 2);
        assert_eq!(queries.len(), 2);
        let outcome = run_workload(&engines, &queries, &config);
        assert_eq!(outcome.rows.len(), 4);
        // Generated queries are satisfiable: every engine that answered
        // must report embeddings, and answered engines must agree.
        let counts: Vec<u128> = outcome
            .rows
            .iter()
            .filter(|r| r.answered == r.total)
            .map(|r| r.total_embeddings)
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(counts[0] > 0);
    }

    #[test]
    fn engine_filter_applies() {
        let config = HarnessConfig {
            engines: vec!["amber".into()],
            ..HarnessConfig::default()
        };
        let rdf = load_benchmark(Benchmark::Lubm, &config);
        let engines = build_engines(rdf, &config);
        assert_eq!(engines.len(), 1);
        assert_eq!(engines[0].name(), "AMbER");
    }
}
