//! Markdown rendering of experiment results (the harness prints the same
//! rows/series the paper reports).

use crate::runner::WorkloadOutcome;
use std::fmt::Write as _;

/// The git commit the benchmark binaries ran against: `GITHUB_SHA` in CI,
/// `git rev-parse HEAD` locally, `"unknown"` outside a checkout. Every
/// `BENCH_*.json` embeds this so the perf trajectory stays reconstructable
/// from the uploaded artifacts alone.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Format milliseconds the way the paper's plots read (adaptive precision).
pub fn fmt_ms(ms: f64) -> String {
    if ms.is_nan() {
        "—".to_string()
    } else if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.0} µs", ms * 1000.0)
    }
}

/// Render one workload cell as a markdown table (time + robustness — the
/// paper's sub-figure (a) and (b) merged).
pub fn workload_table(outcome: &WorkloadOutcome) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "| Engine | avg time | median | p95 | unanswered | answered/total |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|").unwrap();
    for row in &outcome.rows {
        writeln!(
            out,
            "| {} | {} | {} | {} | {:.1}% | {}/{} |",
            row.engine,
            fmt_ms(row.avg_ms),
            fmt_ms(row.median_ms),
            fmt_ms(row.p95_ms),
            row.unanswered_pct,
            row.answered,
            row.total,
        )
        .unwrap();
    }
    out
}

/// Render a sweep (size → outcome) as one series table per metric, the
/// shape of the paper's figures: (a) average time, (b) % unanswered.
pub fn sweep_tables(title: &str, sweep: &[(usize, WorkloadOutcome)]) -> String {
    let mut out = String::new();
    writeln!(out, "### {title}\n").unwrap();
    if sweep.is_empty() {
        writeln!(out, "_no data (workload generation found no seeds)_").unwrap();
        return out;
    }
    let engines: Vec<&str> = sweep[0].1.rows.iter().map(|r| r.engine.as_str()).collect();

    writeln!(out, "**(a) Average time over answered queries**\n").unwrap();
    write!(out, "| size |").unwrap();
    for e in &engines {
        write!(out, " {e} |").unwrap();
    }
    writeln!(out, "\n|---|{}", "---|".repeat(engines.len())).unwrap();
    for (size, outcome) in sweep {
        write!(out, "| {size} |").unwrap();
        for row in &outcome.rows {
            write!(out, " {} |", fmt_ms(row.avg_ms)).unwrap();
        }
        writeln!(out).unwrap();
    }

    writeln!(out, "\n**(b) Percentage of unanswered queries**\n").unwrap();
    write!(out, "| size |").unwrap();
    for e in &engines {
        write!(out, " {e} |").unwrap();
    }
    writeln!(out, "\n|---|{}", "---|".repeat(engines.len())).unwrap();
    for (size, outcome) in sweep {
        write!(out, "| {size} |").unwrap();
        for row in &outcome.rows {
            write!(out, " {:.1}% |", row.unanswered_pct).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EngineRow;

    fn row(name: &str, avg: f64, unanswered: f64) -> EngineRow {
        EngineRow {
            engine: name.into(),
            avg_ms: avg,
            median_ms: avg,
            p95_ms: avg,
            unanswered_pct: unanswered,
            answered: 9,
            total: 10,
            total_embeddings: 100,
        }
    }

    #[test]
    fn fmt_ms_ranges() {
        assert_eq!(fmt_ms(f64::NAN), "—");
        assert_eq!(fmt_ms(0.5), "500 µs");
        assert_eq!(fmt_ms(12.34), "12.3 ms");
        assert_eq!(fmt_ms(2500.0), "2.50 s");
    }

    #[test]
    fn tables_render() {
        let outcome = WorkloadOutcome {
            rows: vec![row("AMbER", 1.5, 0.0), row("ScanJoin", 900.0, 40.0)],
        };
        let table = workload_table(&outcome);
        assert!(table.contains("AMbER"));
        assert!(table.contains("40.0%"));

        let sweep = sweep_tables("Fig X", &[(10, outcome.clone()), (20, outcome)]);
        assert!(sweep.contains("### Fig X"));
        assert!(sweep.contains("| 10 |"));
        assert!(sweep.contains("| 20 |"));
        assert!(sweep.contains("(b) Percentage"));
    }
}
