//! Batched-vs-one-shot latency tracker: replays repeated-workload query
//! streams through `execute_batch` (one warm `QuerySession`: shared arenas +
//! candidate cache) and through N sequential `execute_parsed` calls (fresh
//! state per query, the pre-session behaviour), and emits `BENCH_batch.json`
//! with per-stream totals, the batch/sequential speedup ratio, cache hit
//! rates and arena-reuse numbers — so the batching payoff is recorded
//! in-repo from PR to PR alongside `BENCH_matcher.json`.
//!
//! Usage: `cargo run --release -p amber_bench --bin bench_batch [out.json]`

use amber::{AmberEngine, CancelToken, ExecOptions};
use amber_datagen::synthetic::{self, SyntheticConfig};
use amber_datagen::{Benchmark, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_multigraph::{EdgeTypeId, RdfGraph};
use amber_sparql::SelectQuery;
use amber_util::{FxHashMap, Stopwatch};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Per-query budget — generous: these workloads answer in microseconds to
/// low milliseconds; the budget only guards against pathological cases.
const BUDGET: Duration = Duration::from_secs(5);

struct StreamResult {
    name: &'static str,
    distinct: usize,
    repeats: usize,
    queries: usize,
    sequential_ms: f64,
    batch_ms: f64,
    batch_nocache_ms: f64,
    /// Batch with the full PR-5 plan subsystem (plan + result caches) on
    /// top of the candidate/seed caches.
    batch_plan_ms: f64,
    /// Batch with only the prepared-plan cache (result cache off) —
    /// isolates plan-derivation reuse from whole-result reuse.
    batch_planonly_ms: f64,
    speedup: f64,
    /// The `plan_cache` cell: plan+result caches vs the same batch with
    /// the plan subsystem off (`batch_ms / batch_plan_ms`).
    plan_speedup: f64,
    /// Plan cache alone vs the plan subsystem off.
    plan_only_speedup: f64,
    /// Batch with the PR-6 resource governor armed (memory budget + live
    /// cancel token) — measures the robustness plumbing's overhead.
    governed_ms: f64,
    /// `batch_ms / governed_ms`: ≥ 0.98 means the governor costs < 2%.
    governed_speedup: f64,
    /// Batch with the telemetry registry forced on (counters, histograms,
    /// per-query delta flushes all live).
    obs_on_ms: f64,
    /// The same batch with `AMBER_OBS=off` semantics forced — every
    /// instrumentation site short-circuits on the gate check.
    obs_off_ms: f64,
    /// `obs_off_ms / obs_on_ms`: ≥ 0.97 means telemetry costs < 3%.
    obs_speedup: f64,
    plan_hit_rate: f64,
    result_hit_rate: f64,
    cache_hit_rate: f64,
    cache_entries: usize,
    cache_evictions: u64,
    seed_hit_rate: f64,
    seed_entries: usize,
    arena_peak_bytes: usize,
    arena_reused_bytes: u64,
}

/// The dense multi-edge synthetic graph of `bench_matcher` (parallel
/// predicates between entity pairs) — the workload whose multi-type probes
/// the candidate cache memoizes.
fn multi_edge_graph() -> RdfGraph {
    let config = SyntheticConfig {
        entity_namespace: "http://bench/e/".into(),
        predicate_namespace: "http://bench/p/".into(),
        entities_per_scale: 4_000,
        resource_predicates: 8,
        literal_predicates: 4,
        mean_out_degree: 8.0,
        attachment_bias: 0.8,
        predicate_skew: 1.0,
        attribute_probability: 0.4,
        max_attributes: 3,
        literal_values: 40,
    };
    RdfGraph::from_triples(&synthetic::generate(&config, 2024))
}

/// The most frequent unordered pair of parallel edge types in `rdf` — the
/// pair that makes handcrafted multi-type queries maximally non-trivial.
fn top_parallel_pair(rdf: &RdfGraph) -> Option<(String, String)> {
    let g = rdf.graph();
    let mut counts: FxHashMap<(EdgeTypeId, EdgeTypeId), usize> = FxHashMap::default();
    for v in g.vertices() {
        for entry in g.out_edges(v) {
            let types = entry.types.types();
            for (i, &a) in types.iter().enumerate() {
                for &b in &types[i + 1..] {
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    let (&(a, b), _) = counts.iter().max_by_key(|(_, &c)| c)?;
    Some((
        rdf.edge_type_name(a).to_string(),
        rdf.edge_type_name(b).to_string(),
    ))
}

/// Handcrafted multi-type templates over the dense graph: every query
/// carries at least one edge requiring BOTH of the most common parallel
/// predicates, so its probes go down the (cacheable) spill path.
fn multi_type_queries(rdf: &RdfGraph) -> Vec<SelectQuery> {
    let (pa, pb) = top_parallel_pair(rdf).expect("dense graph has parallel multi-edges");
    let texts = [
        // Multi-type satellite edge.
        format!("SELECT * WHERE {{ ?a <{pa}> ?b . ?a <{pb}> ?b . }}"),
        // Multi-type core edge feeding a chain.
        format!("SELECT * WHERE {{ ?a <{pa}> ?b . ?a <{pb}> ?b . ?b <{pa}> ?c . }}"),
        // Chain entered against edge direction.
        format!("SELECT * WHERE {{ ?c <{pb}> ?a . ?a <{pa}> ?b . ?a <{pb}> ?b . }}"),
        // Two multi-type edges sharing the middle variable.
        format!(
            "SELECT * WHERE {{ ?a <{pa}> ?b . ?a <{pb}> ?b . \
             ?b <{pa}> ?c . ?b <{pb}> ?c . }}"
        ),
        // Star around ?a mixing multi-type and single-type rays.
        format!(
            "SELECT * WHERE {{ ?a <{pa}> ?b . ?a <{pb}> ?b . \
             ?a <{pa}> ?c . ?d <{pb}> ?a . }}"
        ),
    ];
    texts
        .iter()
        .map(|t| amber_sparql::parse_select(t).expect("template parses"))
        .collect()
}

/// `distinct` queries repeated `repeats` times, round-robin (a steady
/// repeated-workload stream, the shape batch sessions amortize).
fn repeat_stream(distinct: &[SelectQuery], repeats: usize) -> Vec<SelectQuery> {
    let mut stream = Vec::with_capacity(distinct.len() * repeats);
    for _ in 0..repeats {
        stream.extend(distinct.iter().cloned());
    }
    stream
}

fn run_stream(
    name: &'static str,
    engine: &AmberEngine,
    distinct: Vec<SelectQuery>,
    repeats: usize,
) -> StreamResult {
    let stream = repeat_stream(&distinct, repeats);
    let options =
        ExecOptions::benchmark(BUDGET).with_candidate_cache(ExecOptions::DEFAULT_CACHE_CAPACITY);
    let options_nocache = ExecOptions::benchmark(BUDGET);
    let options_planonly = options
        .clone()
        .with_plan_cache(ExecOptions::DEFAULT_PLAN_CACHE_CAPACITY);
    let options_plan = options_planonly
        .clone()
        .with_result_cache(ExecOptions::DEFAULT_RESULT_CACHE_CAPACITY);
    // The governed mode: same caches as `options`, plus a (never-hit)
    // 4 GiB memory budget and a live (never-fired) cancel token — every
    // cooperative checkpoint pays the poll, no query ever degrades.
    let options_governed = options
        .clone()
        .with_memory_budget(4 << 30)
        .with_cancel(CancelToken::new());

    // Warm the process (page cache, branch predictors, lazy index pages)
    // outside the measured window, identically for both modes.
    for q in &distinct {
        let _ = engine.execute_parsed(q, &options);
    }

    // Alternate the three modes over two rounds and keep each mode's best
    // time: back-to-back measurement on a single-core host otherwise
    // penalizes whichever mode runs later (frequency/cache drift), which
    // is noise on the same order as the effects being measured.
    let mut sequential_ms = f64::INFINITY;
    let mut batch_ms = f64::INFINITY;
    let mut batch_nocache_ms = f64::INFINITY;
    let mut batch_plan_ms = f64::INFINITY;
    let mut batch_planonly_ms = f64::INFINITY;
    let mut governed_ms = f64::INFINITY;
    let mut obs_on_ms = f64::INFINITY;
    let mut obs_off_ms = f64::INFINITY;
    let mut batch = None;
    let mut batch_plan = None;
    for _ in 0..5 {
        // One-shot path: N sequential execute calls, fresh state per query
        // — exactly what a caller without sessions pays.
        let sw = Stopwatch::start();
        for q in &stream {
            engine
                .execute_parsed(q, &options)
                .expect("stream query executes");
        }
        sequential_ms = sequential_ms.min(sw.elapsed_ms());

        // Batched path, fresh session warmed over the stream.
        let sw = Stopwatch::start();
        let outcome = engine.execute_batch(&stream, &options);
        batch_ms = batch_ms.min(sw.elapsed_ms());
        assert_eq!(outcome.stats.errors, 0, "{name}: batch errored");
        batch = Some(outcome);

        // Batched path with the caches disabled — isolates the arena-reuse
        // share of the win from the memoization share.
        let sw = Stopwatch::start();
        let nocache = engine.execute_batch(&stream, &options_nocache);
        batch_nocache_ms = batch_nocache_ms.min(sw.elapsed_ms());
        assert_eq!(nocache.stats.errors, 0, "{name}: no-cache batch errored");

        // The PR-5 plan subsystem: prepared-plan cache alone, then plan +
        // verbatim-result caches (fresh session each round, warmed over
        // the stream like the other modes).
        let sw = Stopwatch::start();
        let planonly = engine.execute_batch(&stream, &options_planonly);
        batch_planonly_ms = batch_planonly_ms.min(sw.elapsed_ms());
        assert_eq!(planonly.stats.errors, 0, "{name}: plan-only batch errored");

        let sw = Stopwatch::start();
        let plan = engine.execute_batch(&stream, &options_plan);
        batch_plan_ms = batch_plan_ms.min(sw.elapsed_ms());
        assert_eq!(plan.stats.errors, 0, "{name}: plan batch errored");
        batch_plan = Some(plan);

        // Governed batch: the answers must be untouched (no degradation
        // fired), only the checkpoint overhead is being measured.
        let sw = Stopwatch::start();
        let governed = engine.execute_batch(&stream, &options_governed);
        governed_ms = governed_ms.min(sw.elapsed_ms());
        assert_eq!(governed.stats.errors, 0, "{name}: governed batch errored");
        assert_eq!(
            governed.stats.completed,
            stream.len(),
            "{name}: a 4 GiB budget must never degrade these streams"
        );

        // Telemetry overhead cell: the same cached batch with the metric
        // registry forced on vs forced off, back to back inside the same
        // round so both modes see the same frequency/cache conditions.
        {
            let _on = amber_obs::force_enabled(true);
            let sw = Stopwatch::start();
            let instrumented = engine.execute_batch(&stream, &options);
            obs_on_ms = obs_on_ms.min(sw.elapsed_ms());
            assert_eq!(instrumented.stats.errors, 0, "{name}: obs-on batch errored");
        }
        {
            let _off = amber_obs::force_enabled(false);
            let sw = Stopwatch::start();
            let dark = engine.execute_batch(&stream, &options);
            obs_off_ms = obs_off_ms.min(sw.elapsed_ms());
            assert_eq!(dark.stats.errors, 0, "{name}: obs-off batch errored");
        }
    }
    let batch = batch.expect("at least one batch round ran");
    let batch_plan = batch_plan.expect("at least one plan round ran");

    StreamResult {
        name,
        distinct: distinct.len(),
        repeats,
        queries: stream.len(),
        sequential_ms,
        batch_ms,
        batch_nocache_ms,
        batch_plan_ms,
        batch_planonly_ms,
        speedup: sequential_ms / batch_ms,
        plan_speedup: batch_ms / batch_plan_ms,
        plan_only_speedup: batch_ms / batch_planonly_ms,
        governed_ms,
        governed_speedup: batch_ms / governed_ms,
        obs_on_ms,
        obs_off_ms,
        obs_speedup: obs_off_ms / obs_on_ms,
        plan_hit_rate: batch_plan.stats.plans.plans.hit_rate(),
        result_hit_rate: batch_plan.stats.plans.results.hit_rate(),
        cache_hit_rate: batch.stats.cache.hit_rate(),
        cache_entries: batch.stats.cache.entries,
        cache_evictions: batch.stats.cache.evictions,
        seed_hit_rate: batch.stats.seeds.hit_rate(),
        seed_entries: batch.stats.seeds.entries,
        arena_peak_bytes: batch.stats.arena_peak_bytes,
        arena_reused_bytes: batch.stats.arena_reused_bytes,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_batch.json".to_string());

    let lubm = Arc::new(RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016)));
    let lubm_engine = AmberEngine::from_graph(Arc::clone(&lubm));
    let dense = Arc::new(multi_edge_graph());
    let dense_engine = AmberEngine::from_graph(Arc::clone(&dense));

    let mut lubm_gen = WorkloadGenerator::new(&lubm, 41);
    let lubm_queries: Vec<SelectQuery> = lubm_gen
        .generate_many(&WorkloadConfig::new(QueryShape::Complex, 8), 12)
        .into_iter()
        .map(|q| q.query)
        .collect();
    let mut dense_gen = WorkloadGenerator::new(&dense, 42);
    let dense_stars: Vec<SelectQuery> = dense_gen
        .generate_many(&WorkloadConfig::new(QueryShape::Star, 8), 12)
        .into_iter()
        .map(|q| q.query)
        .collect();

    let results = [
        run_stream("lubm_complex_repeat", &lubm_engine, lubm_queries, 10),
        run_stream("multi_edge_star_repeat", &dense_engine, dense_stars, 5),
        run_stream(
            "multi_type_repeat",
            &dense_engine,
            multi_type_queries(&dense),
            40,
        ),
    ];

    let mut json = format!(
        "{{\n  \"benchmark\": \"batch\",\n  \"commit\": \"{}\",\n  \"unit\": \"ms\",\n  \"streams\": [\n",
        amber_bench::report::git_sha(),
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"distinct\": {}, \"repeats\": {}, \"queries\": {}, \
             \"sequential_ms\": {:.3}, \"batch_ms\": {:.3}, \"batch_nocache_ms\": {:.3}, \
             \"batch_plan_ms\": {:.3}, \"batch_planonly_ms\": {:.3}, \
             \"governed_ms\": {:.3}, \"obs_on_ms\": {:.3}, \"obs_off_ms\": {:.3}, \
             \"speedup\": {:.3}, \"plan_speedup\": {:.3}, \"plan_only_speedup\": {:.3}, \
             \"governed_speedup\": {:.3}, \"obs_speedup\": {:.3}, \
             \"plan_hit_rate\": {:.4}, \"result_hit_rate\": {:.4}, \
             \"cache_hit_rate\": {:.4}, \"cache_entries\": {}, \
             \"cache_evictions\": {}, \"seed_hit_rate\": {:.4}, \"seed_entries\": {}, \
             \"arena_peak_bytes\": {}, \"arena_reused_bytes\": {}}}",
            r.name,
            r.distinct,
            r.repeats,
            r.queries,
            r.sequential_ms,
            r.batch_ms,
            r.batch_nocache_ms,
            r.batch_plan_ms,
            r.batch_planonly_ms,
            r.governed_ms,
            r.obs_on_ms,
            r.obs_off_ms,
            r.speedup,
            r.plan_speedup,
            r.plan_only_speedup,
            r.governed_speedup,
            r.obs_speedup,
            r.plan_hit_rate,
            r.result_hit_rate,
            r.cache_hit_rate,
            r.cache_entries,
            r.cache_evictions,
            r.seed_hit_rate,
            r.seed_entries,
            r.arena_peak_bytes,
            r.arena_reused_bytes,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Regression gate: constant-heavy repeated streams were the one shape
    // where batching *lost* to sequential execution (0.95–0.97× under this
    // protocol before seed probes were session-cached; ≥ 1.015× since).
    // The floor sits 2% under break-even: far above the regression's
    // signature, but tolerant of residual wall-clock noise on shared CI
    // runners that best-of-5 alternation cannot fully remove — a hard
    // >= 1.0 assert was measured to flake on timing hiccups alone.
    const NOISE_FLOOR: f64 = 0.98;
    let constant_heavy = results
        .iter()
        .find(|r| r.name == "lubm_complex_repeat")
        .expect("constant-heavy stream present");
    assert!(
        constant_heavy.speedup >= NOISE_FLOOR,
        "lubm_complex_repeat batch speedup regressed to {:.3} (< {NOISE_FLOOR}): \
         sequential {:.3} ms vs batch {:.3} ms, seed hit rate {:.1}% — \
         the pre-seed-cache regression (≈0.97×) is back",
        constant_heavy.speedup,
        constant_heavy.sequential_ms,
        constant_heavy.batch_ms,
        constant_heavy.seed_hit_rate * 100.0,
    );

    // PR-5 gate: the plan_cache cell. Plan derivation (QueryGraph build +
    // decomposition + ordering + seed probes) was profiled as the largest
    // non-search cost of this constant-heavy stream, and verbatim repeats
    // skip execution entirely — together they must clear 1.3× over the
    // same batch with the plan subsystem off (measured well above; the
    // gate leaves headroom for CI noise, not for regressions).
    const PLAN_FLOOR: f64 = 1.3;
    assert!(
        constant_heavy.plan_speedup >= PLAN_FLOOR,
        "lubm_complex_repeat plan-cache speedup regressed to {:.3} (< {PLAN_FLOOR}): \
         batch {:.3} ms vs plan-cached batch {:.3} ms (plan-only {:.3} ms, \
         plan hit rate {:.1}%, result hit rate {:.1}%)",
        constant_heavy.plan_speedup,
        constant_heavy.batch_ms,
        constant_heavy.batch_plan_ms,
        constant_heavy.batch_planonly_ms,
        constant_heavy.plan_hit_rate * 100.0,
        constant_heavy.result_hit_rate * 100.0,
    );

    // PR-6 gate: an armed-but-idle governor (memory budget + cancel token
    // polled at every checkpoint, no fault ever firing) must cost < 2% on
    // the constant-heavy stream — the same noise floor as the batching
    // gate, so a genuine slowdown in the checkpoint path trips it while
    // CI wall-clock jitter does not.
    assert!(
        constant_heavy.governed_speedup >= NOISE_FLOOR,
        "lubm_complex_repeat governed overhead regressed: governed {:.3} ms vs \
         batch {:.3} ms (ratio {:.3} < {NOISE_FLOOR}) — the cooperative \
         checkpoint (cancel poll + governor measurement) got too expensive",
        constant_heavy.governed_ms,
        constant_heavy.batch_ms,
        constant_heavy.governed_speedup,
    );

    // PR-9 gate: the telemetry subsystem must stay near-free. Relaxed
    // atomic counters plus one delta-flush per query were measured well
    // inside the noise band; a ratio under 0.97 means instrumentation
    // crept onto a hot path (per-node or per-embedding work) instead of
    // staying at query and stage boundaries.
    const OBS_FLOOR: f64 = 0.97;
    for r in &results {
        assert!(
            r.obs_speedup >= OBS_FLOOR,
            "{} telemetry overhead regressed: obs-on {:.3} ms vs obs-off {:.3} ms \
             (ratio {:.3} < {OBS_FLOOR}) — instrumentation reached a per-node path",
            r.name,
            r.obs_on_ms,
            r.obs_off_ms,
            r.obs_speedup,
        );
    }
}
