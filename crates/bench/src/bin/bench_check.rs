//! `bench_check` — the CI perf-regression gate.
//!
//! Compares freshly-generated `BENCH_*.json` reports against the
//! *committed* baselines on **hardware-independent** metrics only:
//! answered-query rates, cache hit rates, deterministic kernel hit
//! counts, search-tree node counts, and critical-path (makespan) ratios
//! in node units. Wall-clock milliseconds are deliberately ignored — CI
//! runners are shared and core-starved, so time regressions there are
//! noise, while the gated metrics only move when the *code's behaviour*
//! changes.
//!
//! Any metric regressing by more than 10% (relative) fails the build.
//! Intentional behaviour changes refresh the committed baselines in the
//! same PR, which is exactly the review surface we want: a perf-relevant
//! diff must carry its new numbers.
//!
//! ```text
//! bench_check [--baseline DIR] [--fresh DIR]   (both default to ".")
//! ```
//!
//! Exit status: 0 when every check passes, 1 otherwise.

use amber_bench::minijson::Json;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Relative regression tolerance on every gated metric.
const TOLERANCE: f64 = 0.10;

/// One comparison outcome.
struct Check {
    file: &'static str,
    subject: String,
    metric: String,
    baseline: f64,
    fresh: f64,
    ok: bool,
}

impl Check {
    fn row(&self) -> String {
        format!(
            "{} {:<28} {:<18} baseline {:>10.3}  fresh {:>10.3}  {}",
            if self.ok { "PASS" } else { "FAIL" },
            self.subject,
            self.metric,
            self.baseline,
            self.fresh,
            if self.ok { "" } else { "← regression > 10%" },
        )
    }
}

/// How a metric may move before it counts as a regression.
enum Direction {
    /// Lower fresh values regress (rates, speedups, counts of good things).
    HigherIsBetter,
    /// Any drift beyond the tolerance regresses (deterministic quantities
    /// like node or hit counts, which should only move when behaviour
    /// does).
    Deterministic,
}

/// Gate an overhead *ratio* (off_ms / on_ms): anything above 1.0 in the
/// committed baseline is best-of-alternation noise, not a quality bar, so
/// the baseline is clamped to 1.0 before the 10% tolerance — otherwise a
/// noise-high committed value (say 1.12) would demand ≥ 1.01 of every
/// fresh run and turn the check flaky. The real floor (≥ 0.97) is
/// hard-asserted inside the emitting binary.
fn check_overhead_ratio(
    checks: &mut Vec<Check>,
    file: &'static str,
    subject: &str,
    metric: &'static str,
    baseline: &Json,
    fresh: &Json,
) {
    let Some(base) = baseline.get(metric).and_then(Json::as_f64) else {
        return; // metric added by this PR; gated once the baseline has it
    };
    let Some(new) = fresh.get(metric).and_then(Json::as_f64) else {
        checks.push(Check {
            file,
            subject: subject.to_string(),
            metric: format!("{metric} (missing!)"),
            baseline: base,
            fresh: f64::NAN,
            ok: false,
        });
        return;
    };
    let pinned = base.min(1.0);
    checks.push(Check {
        file,
        subject: subject.to_string(),
        metric: metric.to_string(),
        baseline: pinned,
        fresh: new,
        ok: within(&Direction::HigherIsBetter, pinned, new),
    });
}

fn within(direction: &Direction, baseline: f64, fresh: f64) -> bool {
    match direction {
        Direction::HigherIsBetter => fresh >= baseline * (1.0 - TOLERANCE),
        Direction::Deterministic => {
            let slack = (baseline.abs() * TOLERANCE).max(2.0);
            (fresh - baseline).abs() <= slack
        }
    }
}

/// Compare one numeric metric of matched baseline/fresh entries.
#[allow(clippy::too_many_arguments)]
fn check_metric(
    checks: &mut Vec<Check>,
    file: &'static str,
    subject: &str,
    metric: &str,
    baseline: &Json,
    fresh: &Json,
    direction: Direction,
    skip_zero_baseline: bool,
) {
    let Some(base) = baseline.get(metric).and_then(Json::as_f64) else {
        // Metric not in the baseline yet (added by this PR): nothing to
        // gate against until the baseline is refreshed.
        return;
    };
    let Some(new) = fresh.get(metric).and_then(Json::as_f64) else {
        checks.push(Check {
            file,
            subject: subject.to_string(),
            metric: format!("{metric} (missing!)"),
            baseline: base,
            fresh: f64::NAN,
            ok: false,
        });
        return;
    };
    if skip_zero_baseline && base == 0.0 {
        return;
    }
    checks.push(Check {
        file,
        subject: subject.to_string(),
        metric: metric.to_string(),
        baseline: base,
        fresh: new,
        ok: within(&direction, base, new),
    });
}

/// Index an array of objects by a composite key.
fn index_by<'a>(items: &'a [Json], key_fields: &[&str]) -> Vec<(String, &'a Json)> {
    items
        .iter()
        .map(|item| {
            let key = key_fields
                .iter()
                .map(|f| match item.get(f) {
                    Some(Json::String(s)) => s.clone(),
                    Some(Json::Number(n)) => format!("{n}"),
                    _ => "?".to_string(),
                })
                .collect::<Vec<_>>()
                .join("/");
            (key, item)
        })
        .collect()
}

/// Compare every matched entry of `section` with `compare`.
fn check_section(
    checks: &mut Vec<Check>,
    file: &'static str,
    baseline: &Json,
    fresh: &Json,
    section: &str,
    key_fields: &[&str],
    compare: impl Fn(&mut Vec<Check>, &str, &Json, &Json),
) {
    let base_items = baseline
        .get(section)
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let fresh_items = fresh.get(section).and_then(Json::as_array).unwrap_or(&[]);
    let fresh_index = index_by(fresh_items, key_fields);
    for (key, base_item) in index_by(base_items, key_fields) {
        match fresh_index.iter().find(|(k, _)| *k == key) {
            Some((_, fresh_item)) => compare(checks, &key, base_item, fresh_item),
            None => checks.push(Check {
                file,
                subject: key,
                metric: "entry (missing!)".to_string(),
                baseline: 1.0,
                fresh: f64::NAN,
                ok: false,
            }),
        }
    }
}

fn check_matcher(checks: &mut Vec<Check>, baseline: &Json, fresh: &Json) {
    check_section(
        checks,
        "BENCH_matcher.json",
        baseline,
        fresh,
        "workloads",
        &["name"],
        |checks, key, base, new| {
            // Answered-query rate: the paper's robustness metric, and the
            // only hardware-independent column this tracker has.
            let rate = |item: &Json| -> Option<f64> {
                let answered = item.get("answered")?.as_f64()?;
                let queries = item.get("queries")?.as_f64()?;
                (queries > 0.0).then(|| answered / queries)
            };
            if let (Some(base_rate), Some(fresh_rate)) = (rate(base), rate(new)) {
                checks.push(Check {
                    file: "BENCH_matcher.json",
                    subject: key.to_string(),
                    metric: "answered_rate".to_string(),
                    baseline: base_rate,
                    fresh: fresh_rate,
                    ok: within(&Direction::HigherIsBetter, base_rate, fresh_rate),
                });
            }
        },
    );
}

fn check_batch(checks: &mut Vec<Check>, baseline: &Json, fresh: &Json) {
    check_section(
        checks,
        "BENCH_batch.json",
        baseline,
        fresh,
        "streams",
        &["name"],
        |checks, key, base, new| {
            for metric in [
                "cache_hit_rate",
                "seed_hit_rate",
                "plan_hit_rate",
                "result_hit_rate",
                // PR-6 overhead cell: batch_ms / governed_ms, < 2% governor
                // overhead keeps it ≥ 0.98 (also hard-asserted in-binary).
                "governed_speedup",
            ] {
                check_metric(
                    checks,
                    "BENCH_batch.json",
                    key,
                    metric,
                    base,
                    new,
                    Direction::HigherIsBetter,
                    true, // a 0.0 baseline rate means "not applicable here"
                );
            }
            // PR-9 overhead cell: obs_off_ms / obs_on_ms, < 3% telemetry
            // overhead keeps it ≥ 0.97 (also hard-asserted in-binary).
            check_overhead_ratio(checks, "BENCH_batch.json", key, "obs_speedup", base, new);
        },
    );
}

fn check_kernels(checks: &mut Vec<Check>, baseline: &Json, fresh: &Json) {
    check_section(
        checks,
        "BENCH_kernels.json",
        baseline,
        fresh,
        "cases",
        &["op", "small", "ratio"],
        |checks, key, base, new| {
            // Intersection hit counts are deterministic functions of the
            // generated inputs; strategy selection depends only on sizes.
            check_metric(
                checks,
                "BENCH_kernels.json",
                key,
                "hits",
                base,
                new,
                Direction::Deterministic,
                false,
            );
            let base_strategy = base.get("strategy").and_then(Json::as_str);
            let fresh_strategy = new.get("strategy").and_then(Json::as_str);
            if let (Some(b), Some(f)) = (base_strategy, fresh_strategy) {
                if b != f {
                    checks.push(Check {
                        file: "BENCH_kernels.json",
                        subject: key.to_string(),
                        metric: format!("strategy ({b} → {f})"),
                        baseline: 0.0,
                        fresh: 1.0,
                        ok: false,
                    });
                }
            }
        },
    );
}

fn check_parallel(checks: &mut Vec<Check>, baseline: &Json, fresh: &Json) {
    check_section(
        checks,
        "BENCH_parallel.json",
        baseline,
        fresh,
        "workloads",
        &["name"],
        |checks, key, base, new| {
            for metric in ["seeds", "embeddings", "total_nodes"] {
                check_metric(
                    checks,
                    "BENCH_parallel.json",
                    key,
                    metric,
                    base,
                    new,
                    Direction::Deterministic,
                    false,
                );
            }
            // The scheduling quality the pool PR gates on, in
            // hardware-independent node units.
            check_metric(
                checks,
                "BENCH_parallel.json",
                key,
                "speedup_makespan",
                base,
                new,
                Direction::HigherIsBetter,
                false,
            );
        },
    );
}

fn check_serve(checks: &mut Vec<Check>, baseline: &Json, fresh: &Json) {
    check_section(
        checks,
        "BENCH_serve.json",
        baseline,
        fresh,
        "serving",
        &["name"],
        |checks, key, base, new| {
            // Fairness and cache-sharing ratios: deterministic replays, so
            // they only move when dispatch or cache behaviour changes.
            // PR-9 overhead cell (the obs_overhead entry): telemetry
            // on-vs-off ratio, also hard-asserted ≥ 0.97 in-binary.
            check_overhead_ratio(checks, "BENCH_serve.json", key, "obs_speedup", base, new);
            for metric in [
                "light_service_headroom",
                "shared_plan_hit_rate",
                "result_hit_rate",
            ] {
                check_metric(
                    checks,
                    "BENCH_serve.json",
                    key,
                    metric,
                    base,
                    new,
                    Direction::HigherIsBetter,
                    true, // absent/zero in the concurrent_streams entry
                );
            }
            // Exact counters: served volume and the one-derivation-per-
            // distinct-query pin (the zero-copy byte gauge is hard-asserted
            // to 0 inside bench_serve itself).
            for metric in ["requests", "shared_plan_misses"] {
                check_metric(
                    checks,
                    "BENCH_serve.json",
                    key,
                    metric,
                    base,
                    new,
                    Direction::Deterministic,
                    false,
                );
            }
            // Request-lifecycle counters (the request_lifecycle entry):
            // exact deterministic replays — shed volume, breaker trips and
            // fast-fails, governor-driven degradation. Hardware-independent
            // by construction (zero budgets and byte quotas, not timing).
            // HTTP front-end counters (the http_overhead entry): served
            // volume over the wire, result-cache hits for the repeat-heavy
            // stream, and the copied-bytes gauge (also hard-asserted to 0
            // inside bench_serve; wall times are logged, not gated).
            for metric in [
                "deadline_shed",
                "breaker_trips",
                "breaker_fast_fails",
                "governor_degradation_steps",
                "governed_dispatches",
                "http_served",
                "http_result_hits",
                "http_copied_bytes",
            ] {
                check_metric(
                    checks,
                    "BENCH_serve.json",
                    key,
                    metric,
                    base,
                    new,
                    Direction::Deterministic,
                    false,
                );
            }
        },
    );
}

fn load(dir: &Path, name: &str) -> Option<Json> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).ok()?;
    match Json::parse(&text) {
        Ok(json) => Some(json),
        Err(e) => {
            eprintln!("bench_check: cannot parse {}: {e}", path.display());
            exit(1);
        }
    }
}

fn main() {
    let mut baseline_dir = PathBuf::from(".");
    let mut fresh_dir = PathBuf::from(".");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let operand = |i: usize| -> &str {
            args.get(i).map(String::as_str).unwrap_or_else(|| {
                eprintln!("usage: bench_check [--baseline DIR] [--fresh DIR]");
                exit(2);
            })
        };
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline_dir = PathBuf::from(operand(i));
            }
            "--fresh" => {
                i += 1;
                fresh_dir = PathBuf::from(operand(i));
            }
            other => {
                eprintln!("usage: bench_check [--baseline DIR] [--fresh DIR] (got {other})");
                exit(2);
            }
        }
        i += 1;
    }

    type Checker = fn(&mut Vec<Check>, &Json, &Json);
    let trackers: [(&str, Checker); 5] = [
        ("BENCH_matcher.json", check_matcher),
        ("BENCH_batch.json", check_batch),
        ("BENCH_kernels.json", check_kernels),
        ("BENCH_parallel.json", check_parallel),
        ("BENCH_serve.json", check_serve),
    ];

    let mut checks: Vec<Check> = Vec::new();
    let mut compared_files = 0;
    for (name, checker) in trackers {
        let Some(baseline) = load(&baseline_dir, name) else {
            println!("skip {name}: no committed baseline (new tracker?)");
            continue;
        };
        let Some(fresh) = load(&fresh_dir, name) else {
            eprintln!(
                "bench_check: fresh report {name} missing in {}",
                fresh_dir.display()
            );
            exit(1);
        };
        compared_files += 1;
        checker(&mut checks, &baseline, &fresh);
    }

    let failures = checks.iter().filter(|c| !c.ok).count();
    let mut current_file = "";
    for check in &checks {
        if check.file != current_file {
            current_file = check.file;
            println!("── {current_file}");
        }
        println!("  {}", check.row());
    }
    println!(
        "bench_check: {} checks over {compared_files} reports, {failures} regression(s) (tolerance {:.0}%)",
        checks.len(),
        TOLERANCE * 100.0,
    );
    if failures > 0 {
        exit(1);
    }
}
