//! Set-algebra kernel tracker: times the scalar reference against the
//! runtime-dispatched SIMD kernels across a size-ratio grid and emits
//! `BENCH_kernels.json`, so the kernel-suite payoff is recorded in-repo
//! from PR to PR alongside the matcher/batch trackers.
//!
//! Each case intersects two sorted deduplicated `u32` lists of lengths
//! `small` and `small × ratio` at a controlled hit density, measured once
//! through `KernelLevel::Scalar` and once through the level the dispatcher
//! picked for this host. Ratios at or past the 16× gallop cutoff are
//! included on purpose: both paths gallop there, so their speedup ≈ 1 —
//! that row documents where the adaptive strategy hands off.
//!
//! Usage: `cargo run --release -p amber_bench --bin bench_kernels [out.json]`

use amber_util::sorted::kernels::{self, KernelLevel};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// SplitMix64 — deterministic inputs without pulling in an RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A sorted, deduplicated list of exactly `len` values: cumulative gaps in
/// `1..=max_gap`, so the value range (and thus the overlap density against
/// a second list built the same way) is controlled by `max_gap`.
fn sorted_list(rng: &mut Rng, len: usize, max_gap: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(len);
    let mut x = 0u64;
    for _ in 0..len {
        x += 1 + rng.next() % max_gap;
        v.push(x as u32);
    }
    v
}

struct Case {
    op: &'static str,
    small: usize,
    ratio: usize,
    strategy: &'static str,
    hits: usize,
    scalar_ns: f64,
    simd_ns: f64,
    speedup: f64,
}

/// Nanoseconds per call of `f`, warmed up, over enough iterations to
/// drown out timer noise on lists of this size.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn run_case(op: &'static str, small_len: usize, ratio: usize, dispatched: KernelLevel) -> Case {
    let mut rng = Rng(0xA3B1_9E00 ^ (small_len as u64) << 8 ^ ratio as u64 ^ fx(op));
    // Both lists span the *same* value universe (like OTIL inverted lists,
    // which all draw from one vertex-id space): the small side's gaps scale
    // with the ratio, so skewed pairs interleave end to end instead of the
    // small list hiding in the large list's prefix.
    let a = sorted_list(&mut rng, small_len, 8 * ratio as u64);
    let b = sorted_list(&mut rng, small_len * ratio, 8);
    let hits = {
        let mut out = Vec::new();
        kernels::intersect_into_at(KernelLevel::Scalar, &a, &b, &mut out);
        out.len()
    };
    let strategy = if op == "union" {
        if ratio >= kernels::UNION_GALLOP_RATIO {
            "gallop"
        } else {
            "merge"
        }
    } else if ratio >= kernels::GALLOP_RATIO {
        "gallop"
    } else if small_len < kernels::SIMD_MIN_LEN {
        "merge"
    } else {
        "block"
    };
    let iters = (2_000_000 / (small_len * ratio.max(1))).clamp(20, 50_000);
    let measure = |level: KernelLevel| -> f64 {
        let mut out = Vec::new();
        let mut acc = a.clone();
        match op {
            "intersect" => time_ns(iters, || {
                kernels::intersect_into_at(level, black_box(&a), black_box(&b), &mut out);
                black_box(out.len());
            }),
            "intersect_in_place" => time_ns(iters, || {
                // Refill then intersect; the refill memcpy is identical on
                // both sides of the comparison.
                acc.clear();
                acc.extend_from_slice(&a);
                kernels::intersect_in_place_at(level, black_box(&mut acc), black_box(&b));
                black_box(acc.len());
            }),
            "intersects" => time_ns(iters, || {
                black_box(kernels::intersects_at(level, black_box(&a), black_box(&b)));
            }),
            // Union's baseline is the pre-kernel-suite implementation (a
            // plain merge with no skew strategy); the dispatched side runs
            // the adaptive gallop/bulk-copy entry point.
            "union" if level == KernelLevel::Scalar => time_ns(iters, || {
                out.clear();
                out.reserve(a.len() + b.len());
                amber_util::sorted::scalar::union(black_box(&a), black_box(&b), &mut out);
                black_box(out.len());
            }),
            "union" => time_ns(iters, || {
                kernels::union_at(level, black_box(&a), black_box(&b), &mut out);
                black_box(out.len());
            }),
            other => unreachable!("unknown op {other}"),
        }
    };
    // Alternate the two sides over several rounds and keep each side's
    // best: back-to-back measurement on a single-core host otherwise
    // penalizes whichever side runs second (frequency/cache drift).
    let mut scalar_ns = f64::INFINITY;
    let mut simd_ns = f64::INFINITY;
    for _ in 0..3 {
        scalar_ns = scalar_ns.min(measure(KernelLevel::Scalar));
        simd_ns = simd_ns.min(measure(dispatched));
    }
    Case {
        op,
        small: small_len,
        ratio,
        strategy,
        hits,
        scalar_ns,
        simd_ns,
        speedup: scalar_ns / simd_ns,
    }
}

fn fx(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let dispatched = kernels::level();

    let mut cases = Vec::new();
    // The size-ratio grid: balanced and skewed block-regime cells, one
    // sub-threshold cell (merge) and one past-the-cutoff cell (gallop).
    for &small in &[8usize, 64, 512, 4096] {
        for &ratio in &[1usize, 4, 16, 64] {
            cases.push(run_case("intersect", small, ratio, dispatched));
        }
    }
    for &small in &[64usize, 512, 4096] {
        cases.push(run_case("intersect_in_place", small, 4, dispatched));
        cases.push(run_case("intersects", small, 4, dispatched));
    }
    // Union is output-bound: balanced inputs stay on the scalar merge by
    // design (≈ 1.0); only extreme skew gallops + bulk-copies the runs.
    cases.push(run_case("union", 512, 2, dispatched));
    cases.push(run_case("union", 64, 16, dispatched));
    cases.push(run_case("union", 16, 1024, dispatched));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"kernels\",");
    let _ = writeln!(
        json,
        "  \"commit\": \"{}\",",
        amber_bench::report::git_sha()
    );
    let _ = writeln!(json, "  \"dispatched_level\": \"{}\",", dispatched.name());
    let _ = writeln!(json, "  \"unit\": \"ns_per_op\",");
    let _ = writeln!(json, "  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"{}\", \"small\": {}, \"ratio\": {}, \"strategy\": \"{}\", \
             \"hits\": {}, \"scalar_ns\": {:.1}, \"simd_ns\": {:.1}, \"speedup\": {:.3}}}",
            c.op, c.small, c.ratio, c.strategy, c.hits, c.scalar_ns, c.simd_ns, c.speedup,
        );
        json.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Advisory summary: the block-regime intersection cells are the ones
    // the SIMD layer exists for; report their geometric-mean speedup.
    let block: Vec<f64> = cases
        .iter()
        .filter(|c| c.op == "intersect" && c.strategy == "block")
        .map(|c| c.speedup)
        .collect();
    if !block.is_empty() {
        let gmean = (block.iter().map(|s| s.ln()).sum::<f64>() / block.len() as f64).exp();
        eprintln!(
            "block-regime intersect speedup (geomean of {} cells, {} vs scalar): {:.2}x",
            block.len(),
            dispatched.name(),
            gmean
        );
    }
}
