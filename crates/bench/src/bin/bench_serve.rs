//! Serving-layer tracker: fairness, cross-tenant plan sharing, and the
//! zero-copy result-serving contract, emitting `BENCH_serve.json`.
//!
//! ## What is measured (and why these metrics)
//!
//! * **`light_service_headroom`** — on a deterministic single-dispatcher
//!   replay (1 heavy tenant with a 60-request backlog, 3 light tenants
//!   with 10 each, dispatch order recorded), the fraction of the schedule
//!   that remains *after* the last light-tenant request was dispatched:
//!   `1 - last_light_position / total`. Round-robin serves every light
//!   request within the first ~44% of the schedule (headroom ≈ 0.56); a
//!   FIFO regression would make light tenants wait for the heavy backlog
//!   (headroom ≈ 0). Deterministic, hardware-independent, and gated both
//!   in-binary and by `bench_check`.
//! * **`shared_plan_misses` / `shared_plan_hit_rate`** — the engine-wide
//!   plan store must pay one derivation per distinct query *across all
//!   tenants*; misses are pinned exactly to the distinct-query count.
//! * **`result_hit_copied_bytes`** — the runtime zero-copy gauge: bytes
//!   deep-copied while serving result-cache hits, summed over every tenant
//!   session. Hard-asserted to 0 — a future "defensive clone" regression
//!   fails this binary, not a code review.
//! * **`concurrent_wall_ms`** — 4 client threads × 4 serving workers
//!   against one engine, for the log only (shared CI hosts make wall-clock
//!   a noise metric; correctness of the concurrent path is the
//!   `serve_equivalence` suite's job).
//! * **`http_overhead`** — the identical repeat-heavy stream submitted
//!   directly vs round-tripped through one keep-alive loopback HTTP
//!   connection (`POST /sparql`, JSON results). Wall times are logged;
//!   the gates are deterministic: every request answered over the wire
//!   and zero result bytes copied (the zero-copy pin extends through the
//!   serializers).
//!
//! Usage: `cargo run --release -p amber_bench --bin bench_serve [out.json]`

use amber::{AmberEngine, ExecOptions, QueryStatus};
use amber_datagen::synthetic::{self, SyntheticConfig};
use amber_datagen::{QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_http::{HttpConfig, HttpServer};
use amber_multigraph::RdfGraph;
use amber_serve::{BreakerConfig, ServeConfig, ServeError, Server, SubmitOptions, Ticket};
use amber_sparql::SelectQuery;
use amber_util::Stopwatch;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const HEAVY_REQUESTS: usize = 60;
const LIGHT_TENANTS: usize = 3;
const LIGHT_REQUESTS: usize = 10;

fn dense_graph(seed: u64) -> RdfGraph {
    let config = SyntheticConfig {
        entity_namespace: "http://bench/e/".into(),
        predicate_namespace: "http://bench/p/".into(),
        entities_per_scale: 200,
        resource_predicates: 6,
        literal_predicates: 3,
        mean_out_degree: 6.0,
        attachment_bias: 0.8,
        predicate_skew: 1.0,
        attribute_probability: 0.4,
        max_attributes: 3,
        literal_values: 10,
    };
    RdfGraph::from_triples(&synthetic::generate(&config, seed))
}

/// The shared query set every tenant draws from (cross-tenant plan
/// sharing needs shared shapes, like dashboards issuing the same canned
/// queries).
fn query_set(rdf: &Arc<RdfGraph>) -> Vec<SelectQuery> {
    let mut generator = WorkloadGenerator::new(rdf, 4242);
    let mut queries: Vec<SelectQuery> = generator
        .generate_many(&WorkloadConfig::new(QueryShape::Star, 4), 3)
        .into_iter()
        .map(|g| g.query)
        .collect();
    let mut complex = WorkloadConfig::new(QueryShape::Complex, 5);
    complex.constant_iri_probability = 0.4;
    queries.extend(
        generator
            .generate_many(&complex, 2)
            .into_iter()
            .map(|g| g.query),
    );
    assert!(!queries.is_empty(), "workload generation produced queries");
    queries
}

struct FairnessResult {
    requests: usize,
    distinct_queries: usize,
    light_service_headroom: f64,
    shared_plan_hit_rate: f64,
    shared_plan_misses: u64,
    result_hit_rate: f64,
    result_hit_copied_bytes: u64,
    rejected: u64,
}

/// Deterministic replay: one dispatcher, paused start, recorded dispatch
/// order — the observable fairness of the rotation, with zero scheduling
/// noise.
fn run_fairness(queries: &[SelectQuery]) -> FairnessResult {
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            queue_capacity: 4096,
            paused: true,
            record_dispatch: true,
            options: ExecOptions::batch().with_max_results(100),
            ..ServeConfig::default()
        },
    );
    let mut tickets: Vec<Ticket> = Vec::new();
    // The heavy tenant's backlog is fully queued before any light tenant
    // submits — the worst case for FIFO, the no-op case for round-robin.
    for i in 0..HEAVY_REQUESTS {
        tickets.push(
            server
                .submit("heavy", queries[i % queries.len()].clone())
                .expect("admitted"),
        );
    }
    for tenant in 0..LIGHT_TENANTS {
        for i in 0..LIGHT_REQUESTS {
            tickets.push(
                server
                    .submit(
                        &format!("light-{tenant}"),
                        queries[i % queries.len()].clone(),
                    )
                    .expect("admitted"),
            );
        }
    }
    server.resume();
    for ticket in tickets {
        ticket.wait().expect("served");
    }
    let report = server.shutdown();

    let total = report.dispatch_order.len();
    let last_light = report
        .dispatch_order
        .iter()
        .rposition(|tenant| tenant.starts_with("light-"))
        .expect("light tenants were dispatched");
    let light_service_headroom = 1.0 - (last_light + 1) as f64 / total as f64;
    let requests = HEAVY_REQUESTS + LIGHT_TENANTS * LIGHT_REQUESTS;
    assert_eq!(total, requests, "every admitted request was dispatched");

    let shared = report.shared_plans;
    let result_stats = &report.plan_stats.results;
    FairnessResult {
        requests,
        distinct_queries: queries.len(),
        light_service_headroom,
        shared_plan_hit_rate: shared.hit_rate(),
        shared_plan_misses: shared.misses,
        result_hit_rate: result_stats.hits as f64 / requests as f64,
        result_hit_copied_bytes: report.plan_stats.result_hit_copied_bytes,
        rejected: report.rejected,
    }
}

struct ConcurrentResult {
    tenants: usize,
    requests: usize,
    wall_ms: f64,
    result_hit_copied_bytes: u64,
}

/// Concurrency smoke under load: N client threads, N serving workers, one
/// engine — throughput for the log, the zero-copy gauge for the gate.
fn run_concurrent(queries: &[SelectQuery]) -> ConcurrentResult {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 20;
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: CLIENTS,
            queue_capacity: 4096,
            options: ExecOptions::batch().with_max_results(100),
            ..ServeConfig::default()
        },
    );
    let sw = Stopwatch::start();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                let tenant = format!("client-{client}");
                let tickets: Vec<Ticket> = (0..PER_CLIENT)
                    .map(|i| {
                        server
                            .submit(&tenant, queries[i % queries.len()].clone())
                            .expect("admitted")
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("served");
                }
            });
        }
    });
    let wall_ms = sw.elapsed().as_secs_f64() * 1e3;
    let report = server.shutdown();
    assert_eq!(report.served(), (CLIENTS * PER_CLIENT) as u64);
    ConcurrentResult {
        tenants: CLIENTS,
        requests: CLIENTS * PER_CLIENT,
        wall_ms,
        result_hit_copied_bytes: report.plan_stats.result_hit_copied_bytes,
    }
}

struct LifecycleResult {
    deadline_shed: u64,
    shed_engine_queries: u64,
    shed_engine_nodes: u64,
    breaker_trips: u64,
    breaker_fast_fails: u64,
    governor_degradation_steps: u64,
    governed_dispatches: u64,
}

/// Deterministic request-lifecycle replay: shed rate under expired
/// deadlines (with the zero-engine-work assertion), breaker trip and
/// fast-fail counts under consecutive hard failures, and governor-driven
/// degradation under a starvation-level global memory budget. All counts
/// are exact and hardware-independent.
fn run_lifecycle(queries: &[SelectQuery]) -> LifecycleResult {
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));

    // (a) Deadline shedding: a paused single dispatcher queues 10
    // zero-budget requests (their budget expires while queued) alongside
    // 5 unbudgeted ones; on resume the expired requests are shed with the
    // typed error and zero engine-side work.
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            paused: true,
            options: ExecOptions::batch().with_max_results(100),
            ..ServeConfig::default()
        },
    );
    let doomed: Vec<Ticket> = (0..10)
        .map(|i| {
            server
                .submit_with(
                    "deadline",
                    queries[i % queries.len()].clone(),
                    SubmitOptions::new().with_budget(Duration::ZERO),
                )
                .expect("admitted")
        })
        .collect();
    let healthy: Vec<Ticket> = (0..5)
        .map(|i| {
            server
                .submit("healthy", queries[i % queries.len()].clone())
                .expect("admitted")
        })
        .collect();
    server.resume();
    for ticket in doomed {
        assert!(
            matches!(ticket.wait(), Err(ServeError::DeadlineExpired { .. })),
            "zero-budget requests must shed typed"
        );
    }
    for ticket in healthy {
        ticket.wait().expect("served");
    }
    let shed_report = server.shutdown();
    let shed_tenant = shed_report
        .tenants
        .iter()
        .find(|t| t.tenant == "deadline")
        .expect("shed tenant reported");

    // (b) Breaker trips: two consecutive zero-timeout requests (each a
    // deterministic `TimedOut`) trip a threshold-2 breaker; the next three
    // submissions fast-fail without queueing.
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(3600),
            }),
            options: ExecOptions::batch().with_max_results(100),
            ..ServeConfig::default()
        },
    );
    for i in 0..2 {
        let ticket = server
            .submit_with(
                "noisy",
                queries[i % queries.len()].clone(),
                SubmitOptions::new().with_timeout(Duration::ZERO),
            )
            .expect("admitted");
        assert!(ticket.wait().expect("typed partial").timed_out());
    }
    for _ in 0..3 {
        assert!(
            matches!(
                server.submit("noisy", queries[0].clone()),
                Err(ServeError::CircuitOpen { .. })
            ),
            "a tripped breaker fast-fails"
        );
    }
    let breaker_report = server.shutdown();

    // (c) Governor degradation: a 1-byte global budget forces every
    // dispatch through the per-query degradation ladder to a typed
    // `BudgetExceeded` partial.
    let server = Server::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 1,
            memory_budget: Some(1),
            options: ExecOptions::batch().with_max_results(100),
            ..ServeConfig::default()
        },
    );
    for i in 0..2 {
        let ticket = server
            .submit("governed", queries[i % queries.len()].clone())
            .expect("admitted");
        assert_eq!(
            ticket.wait().expect("typed partial").status,
            QueryStatus::BudgetExceeded,
            "a starved quota degrades to a typed partial"
        );
    }
    let governor_report = server.shutdown();
    let governed_tenant = governor_report
        .tenants
        .iter()
        .find(|t| t.tenant == "governed")
        .expect("governed tenant reported");

    LifecycleResult {
        deadline_shed: shed_report.deadline_shed,
        shed_engine_queries: shed_tenant.queries_executed,
        shed_engine_nodes: shed_tenant.pool.total_nodes(),
        breaker_trips: breaker_report.breaker_trips,
        breaker_fast_fails: breaker_report.breaker_fast_fails,
        governor_degradation_steps: governed_tenant.pool.degradation_steps,
        governed_dispatches: governor_report
            .governor
            .expect("governor configured")
            .governed_dispatches,
    }
}

struct ObsResult {
    requests: usize,
    obs_on_ms: f64,
    obs_off_ms: f64,
    obs_speedup: f64,
}

/// One timed serving round: a single worker drains a repeat-heavy
/// single-tenant stream (admission, queue-wait stamping, completion
/// bookkeeping and the per-query registry flush all on the measured
/// path). The result cache is off so every request *executes* — with it
/// on, repeats answer in ~5 µs and the round collapses to a ~1 ms
/// jitter-dominated microbenchmark of the fixed per-query flush against
/// a no-op, not a measurement of telemetry on a serving workload.
fn obs_round(engine: &Arc<AmberEngine>, queries: &[SelectQuery], requests: usize) -> f64 {
    let server = Server::start(
        Arc::clone(engine),
        ServeConfig {
            workers: 1,
            queue_capacity: 4096,
            options: ExecOptions::batch()
                .with_result_cache(0)
                .with_max_results(100),
            ..ServeConfig::default()
        },
    );
    let sw = Stopwatch::start();
    let tickets: Vec<Ticket> = (0..requests)
        .map(|i| {
            server
                .submit("obs", queries[i % queries.len()].clone())
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("served");
    }
    let ms = sw.elapsed().as_secs_f64() * 1e3;
    let report = server.shutdown();
    assert_eq!(report.served(), requests as u64, "obs round fully served");
    ms
}

/// Telemetry overhead on the serving path: the identical replay with the
/// metric registry forced on vs forced off, alternated over five rounds,
/// best time per mode (the same protocol as `bench_batch`'s overhead
/// cells — back-to-back alternation cancels frequency/cache drift).
fn run_obs_overhead(queries: &[SelectQuery]) -> ObsResult {
    const REQUESTS: usize = 200;
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));
    {
        // Warm outside the measured window (thread pools, lazy indexes).
        let _off = amber_obs::force_enabled(false);
        obs_round(&engine, queries, REQUESTS);
    }
    let mut obs_on_ms = f64::INFINITY;
    let mut obs_off_ms = f64::INFINITY;
    for _ in 0..5 {
        {
            let _on = amber_obs::force_enabled(true);
            obs_on_ms = obs_on_ms.min(obs_round(&engine, queries, REQUESTS));
        }
        {
            let _off = amber_obs::force_enabled(false);
            obs_off_ms = obs_off_ms.min(obs_round(&engine, queries, REQUESTS));
        }
    }
    ObsResult {
        requests: REQUESTS,
        obs_on_ms,
        obs_off_ms,
        obs_speedup: obs_off_ms / obs_on_ms,
    }
}

struct HttpResult {
    requests: usize,
    direct_ms: f64,
    http_ms: f64,
    http_served: u64,
    http_result_hits: u64,
    http_copied_bytes: u64,
}

/// Read one `Content-Length`-framed HTTP response and assert it is a 200.
fn read_http_response(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut tmp).expect("response head");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end - 4]).expect("ASCII head");
    assert!(
        head.starts_with("HTTP/1.1 200 "),
        "expected 200, got: {}",
        head.lines().next().unwrap_or_default()
    );
    let len: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("Content-Length present")
        .trim()
        .parse()
        .expect("Content-Length parses");
    while buf.len() < head_end + len {
        let n = stream.read(&mut tmp).expect("response body");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&tmp[..n]);
    }
}

/// HTTP front-end overhead: the identical repeat-heavy single-tenant
/// stream submitted directly vs round-tripped through one keep-alive
/// loopback connection (`POST /sparql`, SPARQL JSON results). The direct
/// round pipelines tickets where the HTTP round is strictly
/// request/response, so the wall times bound the *worst-case* front-end
/// cost; both are logged, not gated. The gates are the deterministic
/// counters: every request served over the wire, repeats hitting the
/// result cache, zero result bytes copied.
fn run_http_overhead(queries: &[SelectQuery]) -> HttpResult {
    const REQUESTS: usize = 100;
    let texts: Vec<String> = queries.iter().map(amber_sparql::to_sparql).collect();
    let serve_config = || ServeConfig {
        workers: 2,
        queue_capacity: 4096,
        options: ExecOptions::batch().with_max_results(100),
        ..ServeConfig::default()
    };

    // Direct submission: the in-process floor.
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));
    let server = Server::start(Arc::clone(&engine), serve_config());
    let sw = Stopwatch::start();
    let tickets: Vec<Ticket> = (0..REQUESTS)
        .map(|i| {
            server
                .submit_sparql("direct", &texts[i % texts.len()])
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("served");
    }
    let direct_ms = sw.elapsed().as_secs_f64() * 1e3;
    server.shutdown();

    // The same stream over one keep-alive HTTP connection.
    let engine = Arc::new(AmberEngine::from_graph(dense_graph(11)));
    let server = Server::start(Arc::clone(&engine), serve_config());
    let http = HttpServer::start(server, HttpConfig::default()).expect("bind loopback");
    let mut stream = TcpStream::connect(http.local_addr()).expect("connect loopback");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("socket timeout");
    stream.set_nodelay(true).expect("nodelay");
    let sw = Stopwatch::start();
    for i in 0..REQUESTS {
        let text = &texts[i % texts.len()];
        let request = format!(
            "POST /sparql HTTP/1.1\r\nHost: bench\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{text}",
            text.len()
        );
        stream.write_all(request.as_bytes()).expect("write request");
        read_http_response(&mut stream);
    }
    let http_ms = sw.elapsed().as_secs_f64() * 1e3;
    drop(stream);
    let report = http.shutdown();

    HttpResult {
        requests: REQUESTS,
        direct_ms,
        http_ms,
        http_served: report.served(),
        http_result_hits: report.plan_stats.results.hits,
        http_copied_bytes: report.plan_stats.result_hit_copied_bytes,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let rdf = Arc::new(dense_graph(11));
    let queries = query_set(&rdf);

    let fairness = run_fairness(&queries);
    let concurrent = run_concurrent(&queries);
    let lifecycle = run_lifecycle(&queries);
    let obs = run_obs_overhead(&queries);
    let http = run_http_overhead(&queries);

    let mut json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"commit\": \"{}\",\n  \"unit\": \"ratios / bytes / ms\",\n  \
         \"note\": \"light_service_headroom = schedule fraction left after the last light-tenant \
         dispatch on a deterministic single-dispatcher replay (round-robin ~0.56, FIFO ~0.0); \
         shared_plan_misses is pinned to the distinct-query count (one derivation serves every \
         tenant); result_hit_copied_bytes is the runtime zero-copy gauge and must stay 0; \
         request_lifecycle counts are exact deterministic replays (shed rate with zero engine \
         work, breaker trip/fast-fail, governor degradation); http_overhead round-trips the \
         same stream through one keep-alive loopback connection (served/copied-byte counters \
         gated, wall times logged); wall-clock is logged, not gated\",\n  \"serving\": [\n",
        amber_bench::report::git_sha(),
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"fair_dispatch\", \"tenants\": {}, \"requests\": {}, \
         \"distinct_queries\": {}, \"light_service_headroom\": {:.3}, \
         \"shared_plan_hit_rate\": {:.3}, \"shared_plan_misses\": {}, \
         \"result_hit_rate\": {:.3}, \"result_hit_copied_bytes\": {}, \"rejected\": {}}},",
        1 + LIGHT_TENANTS,
        fairness.requests,
        fairness.distinct_queries,
        fairness.light_service_headroom,
        fairness.shared_plan_hit_rate,
        fairness.shared_plan_misses,
        fairness.result_hit_rate,
        fairness.result_hit_copied_bytes,
        fairness.rejected,
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"concurrent_streams\", \"tenants\": {}, \"requests\": {}, \
         \"wall_ms\": {:.3}, \"result_hit_copied_bytes\": {}}},",
        concurrent.tenants,
        concurrent.requests,
        concurrent.wall_ms,
        concurrent.result_hit_copied_bytes,
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"request_lifecycle\", \"deadline_shed\": {}, \
         \"shed_engine_queries\": {}, \"shed_engine_nodes\": {}, \"breaker_trips\": {}, \
         \"breaker_fast_fails\": {}, \"governor_degradation_steps\": {}, \
         \"governed_dispatches\": {}}},",
        lifecycle.deadline_shed,
        lifecycle.shed_engine_queries,
        lifecycle.shed_engine_nodes,
        lifecycle.breaker_trips,
        lifecycle.breaker_fast_fails,
        lifecycle.governor_degradation_steps,
        lifecycle.governed_dispatches,
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"obs_overhead\", \"requests\": {}, \"obs_on_ms\": {:.3}, \
         \"obs_off_ms\": {:.3}, \"obs_speedup\": {:.3}}},",
        obs.requests, obs.obs_on_ms, obs.obs_off_ms, obs.obs_speedup,
    );
    let _ = writeln!(
        json,
        "    {{\"name\": \"http_overhead\", \"requests\": {}, \"direct_ms\": {:.3}, \
         \"http_ms\": {:.3}, \"http_served\": {}, \"http_result_hits\": {}, \
         \"http_copied_bytes\": {}}}",
        http.requests,
        http.direct_ms,
        http.http_ms,
        http.http_served,
        http.http_result_hits,
        http.http_copied_bytes,
    );
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Regression gates (hardware-independent, deterministic).
    assert!(
        fairness.light_service_headroom >= 0.40,
        "fair dispatch regressed: light tenants were served in the last {:.0}% of the \
         schedule (headroom {:.3} < 0.40; round-robin gives ~0.56, FIFO ~0.0)",
        (1.0 - fairness.light_service_headroom) * 100.0,
        fairness.light_service_headroom,
    );
    assert_eq!(
        fairness.result_hit_copied_bytes, 0,
        "result-cache hits deep-copied rows; the zero-copy serving contract is broken"
    );
    assert_eq!(
        concurrent.result_hit_copied_bytes, 0,
        "concurrent serving deep-copied cached rows"
    );
    if amber::plan_cache_enabled() {
        assert_eq!(
            fairness.shared_plan_misses as usize, fairness.distinct_queries,
            "cross-tenant plan sharing regressed: more derivations than distinct queries"
        );
        assert!(
            fairness.result_hit_rate > 0.5,
            "repeat-heavy serving should mostly hit the result cache: {:.3}",
            fairness.result_hit_rate,
        );
    }
    // Request-lifecycle gates: exact replays, so exact assertions.
    assert_eq!(
        lifecycle.deadline_shed, 10,
        "every zero-budget request must be shed with DeadlineExpired"
    );
    assert_eq!(
        lifecycle.shed_engine_queries, 0,
        "shed requests must not execute queries"
    );
    assert_eq!(
        lifecycle.shed_engine_nodes, 0,
        "shed requests must not visit search-tree nodes"
    );
    assert_eq!(lifecycle.breaker_trips, 1, "threshold-2 replay trips once");
    assert_eq!(
        lifecycle.breaker_fast_fails, 3,
        "every post-trip submission fast-fails"
    );
    assert!(
        lifecycle.governor_degradation_steps >= 1,
        "a 1-byte global budget must drive the degradation ladder"
    );
    assert_eq!(
        lifecycle.governed_dispatches, 2,
        "every dispatch under a global budget is governed"
    );
    // PR-9 gate: serving-layer telemetry (queue-depth gauge, queue-wait
    // histogram, outcome counters, per-query registry flush) must stay
    // under 3% — the same floor as bench_batch's obs cell.
    assert!(
        obs.obs_speedup >= 0.97,
        "serving telemetry overhead regressed: obs-on {:.3} ms vs obs-off {:.3} ms \
         (ratio {:.3} < 0.97)",
        obs.obs_on_ms,
        obs.obs_off_ms,
        obs.obs_speedup,
    );
    // HTTP front-end gates: every wire request answered, repeats hitting
    // the result cache, and not one result byte copied on the way out.
    assert_eq!(
        http.http_served as usize, http.requests,
        "the HTTP round must serve every request"
    );
    assert_eq!(
        http.http_copied_bytes, 0,
        "HTTP serving deep-copied result rows; the zero-copy pin must extend \
         through the wire serializers"
    );
    if amber::plan_cache_enabled() {
        assert!(
            http.http_result_hits as usize >= http.requests / 2,
            "a repeat-heavy HTTP stream should mostly hit the result cache: {} of {}",
            http.http_result_hits,
            http.requests,
        );
    }
}
