//! Telemetry snapshot dumper: runs a small canned workload (a batch with
//! a forced pool dispatch, plus one served request) against the demo
//! graph, then prints the resulting registry snapshot in **both** export
//! formats — Prometheus text and JSON — and self-verifies them: the JSON
//! must round-trip through `amber_bench::minijson` and both renders must
//! carry the catalog's engine/cache/pool/serve series. Doubles as the
//! export-format golden test (the same verification runs under
//! `cargo test -p amber_bench`).
//!
//! Usage: `cargo run -p amber_bench --bin obs_dump`

use amber::{AmberEngine, ExecOptions, Scheduler};
use amber_bench::minijson::Json;
use amber_serve::{ServeConfig, Server};
use std::sync::Arc;

const TRIPLES: &str = "\
<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> <http://e/c> .\n\
<http://e/c> <http://e/q> <http://e/a> .\n";

const CHAIN: &str = "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?z . }";

/// Metric families the canned workload is guaranteed to register — one
/// per instrumented layer (see docs/observability.md for the catalog).
const EXPECTED: &[&str] = &[
    "amber_queries_total",
    "amber_query_latency_us",
    "amber_cache_hits_total",
    "amber_cache_entries",
    "amber_pool_runs_total",
    "amber_exec_runs_total",
    "amber_serve_requests_total",
    "amber_serve_queue_depth",
    "amber_serve_queue_wait_us",
];

/// Drive every instrumented layer once: a warm batch (plan/result cache
/// flows, forced pool dispatch) and one served request (admission,
/// queue-wait, served counters).
fn canned_workload() {
    let engine = Arc::new(AmberEngine::load_ntriples(TRIPLES).expect("demo graph parses"));
    let query = amber_sparql::parse_select(CHAIN).expect("canned query parses");
    let options = ExecOptions::batch()
        .with_threads(4)
        .with_scheduler(Scheduler::Pool);
    let batch = engine.execute_batch(&[query.clone(), query], &options);
    assert_eq!(batch.stats.completed, 2, "canned batch completes");

    let server = Server::start(Arc::clone(&engine), ServeConfig::default());
    server
        .submit_sparql("tenant-a", CHAIN)
        .expect("admitted")
        .wait()
        .expect("served");
    let report = server.shutdown();
    assert_eq!(report.served(), 1, "canned serve round completes");
}

/// Verify both renders: the JSON parses and both formats carry every
/// expected family (presence, not values — registration is the contract;
/// values vary with cache lanes).
fn verify(prometheus: &str, json: &str) {
    let parsed = Json::parse(json).expect("the JSON render must parse");
    let metrics = parsed
        .get("metrics")
        .and_then(Json::as_array)
        .expect("top-level `metrics` array");
    assert!(!metrics.is_empty(), "snapshot must not be empty");
    for name in EXPECTED {
        assert!(
            prometheus.contains(&format!("# TYPE {name}")),
            "Prometheus render missing family {name}"
        );
        assert!(
            metrics
                .iter()
                .any(|m| m.get("name").and_then(Json::as_str) == Some(name)),
            "JSON render missing family {name}"
        );
    }
    // Histogram shape: cumulative buckets with a +Inf terminator and
    // _sum/_count series in Prometheus; count/sum/buckets in JSON.
    assert!(prometheus.contains("amber_query_latency_us_bucket"));
    assert!(prometheus.contains("le=\"+Inf\""));
    assert!(prometheus.contains("amber_query_latency_us_sum"));
    assert!(prometheus.contains("amber_query_latency_us_count"));
    let latency = metrics
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some("amber_query_latency_us"))
        .expect("latency histogram in JSON");
    assert!(latency.get("count").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0);
    assert!(latency.get("buckets").and_then(Json::as_array).is_some());
}

fn dump() -> (String, String) {
    let _on = amber_obs::force_enabled(true);
    canned_workload();
    let snapshot = amber_obs::snapshot();
    (snapshot.render_prometheus(), snapshot.render_json())
}

fn main() {
    let (prometheus, json) = dump();
    println!("# ---- Prometheus text exposition ----");
    print!("{prometheus}");
    println!("# ---- JSON snapshot ----");
    println!("{json}");
    verify(&prometheus, &json);
    eprintln!("obs_dump: both renders verified");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_snapshot_renders_verify() {
        let (prometheus, json) = dump();
        verify(&prometheus, &json);
    }
}
