//! Parallel-scheduler tracker: work-stealing pool vs static fork-per-chunk
//! on skewed-recursion workloads, emitting `BENCH_parallel.json`.
//!
//! ## What is measured (and why two metrics)
//!
//! * **`*_wall_ms`** — wall-clock per mode, best-of-`ROUNDS` over
//!   `REPEATS` back-to-back component runs. Honest but
//!   hardware-dependent: on a host without `THREADS` free cores (CI
//!   runners here are often single-core) both schedulers serialize and
//!   wall-clock cannot separate them.
//! * **`*_makespan_nodes`** — the schedule's critical path in search-tree
//!   *node units* (each node = one candidate attempt; the matcher counts
//!   them exactly, and the parallel partition preserves their total). For
//!   fork-per-chunk this is the heaviest chunk's node sum, computed from
//!   per-seed sequential runs and the actual chunk partition; for the pool
//!   it is the busiest worker's executed nodes as reported by the
//!   session's [`PoolStats`](amber::PoolStats). Makespan is what
//!   wall-clock converges to once every worker has a core of its own, and
//!   it is hardware-independent — the property a *scheduler* benchmark
//!   should gate on. `speedup_makespan = chunked / pool`.
//!
//! The skewed workloads put one giant hub seed (deep recursion subtree)
//! among thousands of trivial seeds: static chunking strands the hub's
//! whole subtree on one worker, dynamic subtree splitting drains it across
//! the pool. The uniform workload is the control where static chunking is
//! already optimal and the pool may only tie.
//!
//! Usage: `cargo run --release -p amber_bench --bin bench_parallel [out.json]`

use amber::matcher::{ComponentMatcher, MatchConfig};
use amber::parallel::{dispatch_for, run_component_in_session, Dispatch};
use amber::{AmberEngine, ExecOptions, QuerySession, Scheduler};
use amber_datagen::skewed::{self, SkewedConfig};
use amber_util::{Deadline, Stopwatch};
use std::fmt::Write as _;

/// Workers for the parallel modes (the ISSUE's evaluation point).
const THREADS: usize = 8;
/// Component runs per measured round (averages out scheduling jitter in
/// the pool's per-worker node attribution).
const REPEATS: usize = 20;
/// Measured rounds per mode; the best round is kept (alternating rounds —
/// see `bench_batch` — to decorrelate from host frequency/cache drift).
const ROUNDS: usize = 5;

struct WorkloadResult {
    name: &'static str,
    seeds: usize,
    embeddings: u128,
    total_nodes: u64,
    sequential_wall_ms: f64,
    chunked_wall_ms: f64,
    pool_wall_ms: f64,
    chunked_makespan_nodes: u64,
    pool_makespan_nodes: u64,
    speedup_makespan: f64,
    speedup_wall: f64,
    chunked_dispatch: &'static str,
    root_tasks: u64,
    split_tasks: u64,
    steals: u64,
    nodes_per_worker: Vec<u64>,
}

/// Per-seed node costs from isolated sequential runs (the ground truth the
/// static chunk makespan is computed from).
fn per_seed_nodes(matcher: &ComponentMatcher<'_>, config: &MatchConfig<'_>) -> Vec<u64> {
    let initial = matcher.initial_candidates();
    (0..initial.len())
        .map(|i| matcher.run_on(&initial[i..i + 1], config).nodes)
        .collect()
}

/// The fork-per-chunk critical path in node units under `options`: the
/// heaviest chunk of the partition `dispatch_for` would actually run (the
/// whole seed list on one worker when it falls back to sequential).
fn chunked_makespan(seed_nodes: &[u64], options: &ExecOptions) -> (u64, &'static str) {
    match dispatch_for(seed_nodes.len(), options) {
        Dispatch::Chunked { workers } => {
            let chunk_size = seed_nodes.len().div_ceil(workers);
            let max = seed_nodes
                .chunks(chunk_size)
                .map(|chunk| chunk.iter().sum::<u64>())
                .max()
                .unwrap_or(0);
            (max, "chunked")
        }
        _ => (seed_nodes.iter().sum(), "sequential"),
    }
}

fn run_workload(name: &'static str, config: &SkewedConfig) -> WorkloadResult {
    let engine = AmberEngine::from_graph(amber_multigraph::RdfGraph::from_triples(
        &skewed::generate(config),
    ));
    let query = amber_sparql::parse_select(&skewed::chain_query(config)).expect("query parses");
    let plan = engine.prepare(&query).expect("query graph builds");
    let qg = plan.query_graph();
    let components = qg.connected_components();
    assert_eq!(components.len(), 1, "{name}: chain query is connected");
    let matcher = ComponentMatcher::new(qg, engine.rdf().graph(), engine.index(), &components[0]);

    let deadline = Deadline::unlimited();
    // Counting mode: scheduling is the variable.
    let match_config = MatchConfig::new(&deadline, Some(0));

    // Ground truth: exact count, total work, per-seed work.
    let sequential = matcher.run(&match_config);
    assert!(!sequential.timed_out());
    assert_eq!(
        sequential.count,
        config.expected_embeddings(),
        "{name}: closed-form count check"
    );
    let seed_nodes = per_seed_nodes(&matcher, &match_config);
    assert_eq!(seed_nodes.iter().sum::<u64>(), sequential.nodes);

    let chunked_options = ExecOptions::new()
        .counting()
        .with_threads(THREADS)
        .with_scheduler(Scheduler::ForkPerChunk);
    let pool_options = ExecOptions::new()
        .counting()
        .with_threads(THREADS)
        .with_scheduler(Scheduler::Pool);
    let (chunked_nodes, chunked_dispatch) = chunked_makespan(&seed_nodes, &chunked_options);

    // Alternate the three modes across rounds and keep each mode's best
    // wall time. Pool statistics accumulate over every pool round (more
    // samples → steadier per-worker balance numbers).
    let sequential_options = ExecOptions::new().counting();
    let mut sequential_wall = f64::INFINITY;
    let mut chunked_wall = f64::INFINITY;
    let mut pool_wall = f64::INFINITY;
    let mut pool_session = QuerySession::new(0);
    let mut pool_runs = 0u64;
    for _ in 0..ROUNDS {
        let mut session = QuerySession::new(0);
        let sw = Stopwatch::start();
        for _ in 0..REPEATS {
            let r = run_component_in_session(
                &matcher,
                &match_config,
                &sequential_options,
                &mut session,
            )
            .expect("sequential round must not trap a panic");
            assert_eq!(r.count, sequential.count);
        }
        sequential_wall = sequential_wall.min(sw.elapsed_ms());

        let mut session = QuerySession::new(0);
        let sw = Stopwatch::start();
        for _ in 0..REPEATS {
            let r =
                run_component_in_session(&matcher, &match_config, &chunked_options, &mut session)
                    .expect("chunked round must not trap a panic");
            assert_eq!(r.count, sequential.count);
        }
        chunked_wall = chunked_wall.min(sw.elapsed_ms());

        let sw = Stopwatch::start();
        for _ in 0..REPEATS {
            let r =
                run_component_in_session(&matcher, &match_config, &pool_options, &mut pool_session)
                    .expect("pool round must not trap a panic");
            assert_eq!(r.count, sequential.count);
            assert_eq!(r.nodes, sequential.nodes, "{name}: exact work partition");
            pool_runs += 1;
        }
        pool_wall = pool_wall.min(sw.elapsed_ms());
    }

    let pool_stats = pool_session.pool_stats();
    assert_eq!(pool_stats.runs, pool_runs);
    assert_eq!(
        pool_stats.total_nodes(),
        sequential.nodes * pool_runs,
        "{name}: pooled node attribution must conserve work"
    );
    // Per-run averages over `pool_runs` samples.
    let pool_makespan = pool_stats.critical_path_nodes.div_ceil(pool_runs);
    let nodes_per_worker: Vec<u64> = pool_stats
        .nodes_per_worker
        .iter()
        .map(|&n| n / pool_runs)
        .collect();

    WorkloadResult {
        name,
        seeds: seed_nodes.len(),
        embeddings: sequential.count,
        total_nodes: sequential.nodes,
        sequential_wall_ms: sequential_wall,
        chunked_wall_ms: chunked_wall,
        pool_wall_ms: pool_wall,
        chunked_makespan_nodes: chunked_nodes,
        pool_makespan_nodes: pool_makespan,
        speedup_makespan: chunked_nodes as f64 / pool_makespan.max(1) as f64,
        speedup_wall: chunked_wall / pool_wall,
        chunked_dispatch,
        root_tasks: pool_stats.root_tasks / pool_runs,
        split_tasks: pool_stats.split_tasks / pool_runs,
        steals: pool_stats.steals / pool_runs,
        nodes_per_worker,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());

    let results = [
        run_workload("skewed_hub", &SkewedConfig::skewed()),
        run_workload("single_heavy_seed", &SkewedConfig::single_seed()),
        run_workload("uniform_seeds", &SkewedConfig::uniform()),
    ];

    let mut json = format!(
        "{{\n  \"benchmark\": \"parallel\",\n  \"commit\": \"{}\",\n  \"threads\": 8,\n  \"unit\": \"ms / nodes\",\n  \
         \"note\": \"makespan = critical path in search-tree node units (max per-worker work); \
         equals wall-clock once every worker has a free core and is the hardware-independent \
         scheduling metric this benchmark gates on — wall times on core-starved CI hosts \
         serialize both schedulers\",\n  \"workloads\": [\n",
        amber_bench::report::git_sha(),
    );
    for (i, r) in results.iter().enumerate() {
        let workers: Vec<String> = r.nodes_per_worker.iter().map(u64::to_string).collect();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"seeds\": {}, \"embeddings\": {}, \"total_nodes\": {}, \
             \"sequential_wall_ms\": {:.3}, \"chunked_wall_ms\": {:.3}, \"pool_wall_ms\": {:.3}, \
             \"chunked_dispatch\": \"{}\", \"chunked_makespan_nodes\": {}, \
             \"pool_makespan_nodes\": {}, \"speedup_makespan\": {:.3}, \"speedup_wall\": {:.3}, \
             \"root_tasks\": {}, \"split_tasks\": {}, \"steals\": {}, \
             \"nodes_per_worker\": [{}]}}",
            r.name,
            r.seeds,
            r.embeddings,
            r.total_nodes,
            r.sequential_wall_ms,
            r.chunked_wall_ms,
            r.pool_wall_ms,
            r.chunked_dispatch,
            r.chunked_makespan_nodes,
            r.pool_makespan_nodes,
            r.speedup_makespan,
            r.speedup_wall,
            r.root_tasks,
            r.split_tasks,
            r.steals,
            workers.join(", "),
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Regression gates.
    //
    // Skewed workloads: the pool's critical path must beat static chunking
    // by ≥ 1.5× (measured ≈ 5–7×: the hub subtree splits across all eight
    // workers instead of serializing one chunk). `single_heavy_seed` is the
    // stronger claim — fork-per-chunk cannot parallelize one seed at all.
    for name in ["skewed_hub", "single_heavy_seed"] {
        let r = results.iter().find(|r| r.name == name).unwrap();
        assert!(
            r.speedup_makespan >= 1.5,
            "{name}: pool makespan speedup {:.3} < 1.5 over fork-per-chunk \
             (chunked {} vs pool {} nodes; splits/run {})",
            r.speedup_makespan,
            r.chunked_makespan_nodes,
            r.pool_makespan_nodes,
            r.split_tasks,
        );
    }
    // Uniform control: static chunking is already an optimal schedule
    // here, so the pool can only tie. Two noise-floor-gated ≥ 1.0× checks:
    //
    // * wall-clock — the metric that matters on uniform work — must stay
    //   at break-even; the floor sits 10% under it to absorb shared-CI
    //   scheduling noise that best-of-5 alternation cannot fully remove.
    //   In practice the pool *wins* wall here (measured ≈ 1.04×) because
    //   fork-per-chunk pays eight thread spawns per run;
    // * the balance metric is allowed up to 20% granularity slack:
    //   amortized half-splitting produces uneven task sizes, and greedy
    //   list scheduling of those can trail a perfectly pre-balanced
    //   partition by up to one split granule per worker (measured ≈ 0.87,
    //   i.e. within one ~350-node granule of the 2 368-node optimum).
    let uniform = results.iter().find(|r| r.name == "uniform_seeds").unwrap();
    assert!(
        uniform.speedup_makespan >= 0.80,
        "uniform_seeds: pool balance regressed: makespan ratio {:.3} < 0.80",
        uniform.speedup_makespan,
    );
    assert!(
        uniform.speedup_wall >= 0.90,
        "uniform_seeds: pool wall-clock regressed vs fork-per-chunk: {:.3}x < 0.90 \
         (chunked {:.3} ms vs pool {:.3} ms)",
        uniform.speedup_wall,
        uniform.chunked_wall_ms,
        uniform.pool_wall_ms,
    );
}
