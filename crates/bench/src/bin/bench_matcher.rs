//! Matcher latency tracker: runs the AMbER engine over fixed seeded
//! workloads and emits `BENCH_matcher.json` with per-workload p50/p95 so
//! the performance trajectory is recorded in-repo from PR to PR.
//!
//! Usage: `cargo run --release -p amber_bench --bin bench_matcher [out.json]`

use amber::{AmberEngine, ExecOptions};
use amber_datagen::synthetic::{self, SyntheticConfig};
use amber_datagen::{Benchmark, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_multigraph::RdfGraph;
use amber_util::stats::Summary;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

struct WorkloadResult {
    name: &'static str,
    queries: usize,
    timeouts: usize,
    summary: Summary,
}

fn run_workload(
    name: &'static str,
    engine: &AmberEngine,
    rdf: &RdfGraph,
    shape: QueryShape,
    size: usize,
    workload_seed: u64,
    count: usize,
) -> WorkloadResult {
    let options = ExecOptions::benchmark(Duration::from_secs(2));
    let mut generator = WorkloadGenerator::new(rdf, workload_seed);
    let queries = generator.generate_many(&WorkloadConfig::new(shape, size), count);
    // Warm-up pass: run every query once unmeasured, so first-touch costs
    // (page faults, lazy index pages, allocator growth, branch-predictor
    // state) land outside the recorded latencies — without it the p95 of
    // the heavier workloads was dominated by whichever query ran first
    // (22 ms vs a 0.05 ms p50 on lubm_complex_8).
    for q in &queries {
        let _ = engine.execute_parsed(&q.query, &options);
    }
    let mut latencies_ms = Vec::with_capacity(queries.len());
    let mut timeouts = 0usize;
    for q in &queries {
        let outcome = engine
            .execute_parsed(&q.query, &options)
            .expect("generated query executes");
        if outcome.timed_out() {
            timeouts += 1;
        } else {
            latencies_ms.push(outcome.elapsed.as_secs_f64() * 1e3);
        }
    }
    WorkloadResult {
        name,
        queries: queries.len(),
        timeouts,
        summary: Summary::of(&latencies_ms),
    }
}

/// A dense multi-edge synthetic graph (parallel predicates between entity
/// pairs) — the workload the probe-API ablation optimizes for.
fn multi_edge_graph() -> RdfGraph {
    let config = SyntheticConfig {
        entity_namespace: "http://bench/e/".into(),
        predicate_namespace: "http://bench/p/".into(),
        entities_per_scale: 4_000,
        resource_predicates: 8,
        literal_predicates: 4,
        mean_out_degree: 8.0,
        attachment_bias: 0.8,
        predicate_skew: 1.0,
        attribute_probability: 0.4,
        max_attributes: 3,
        literal_values: 40,
    };
    RdfGraph::from_triples(&synthetic::generate(&config, 2024))
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string() // empty sample: mean/p50/p95 are NaN
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_matcher.json".to_string());

    let lubm = Arc::new(RdfGraph::from_triples(&Benchmark::Lubm.generate(1, 2016)));
    let lubm_engine = AmberEngine::from_graph(Arc::clone(&lubm));
    let dense = Arc::new(multi_edge_graph());
    let dense_engine = AmberEngine::from_graph(Arc::clone(&dense));

    let results = [
        run_workload(
            "lubm_star_10",
            &lubm_engine,
            &lubm,
            QueryShape::Star,
            10,
            31,
            20,
        ),
        run_workload(
            "lubm_star_20",
            &lubm_engine,
            &lubm,
            QueryShape::Star,
            20,
            32,
            20,
        ),
        run_workload(
            "lubm_complex_8",
            &lubm_engine,
            &lubm,
            QueryShape::Complex,
            8,
            33,
            20,
        ),
        run_workload(
            "lubm_complex_12",
            &lubm_engine,
            &lubm,
            QueryShape::Complex,
            12,
            34,
            20,
        ),
        run_workload(
            "multi_edge_star_8",
            &dense_engine,
            &dense,
            QueryShape::Star,
            8,
            35,
            20,
        ),
        run_workload(
            "multi_edge_complex_6",
            &dense_engine,
            &dense,
            QueryShape::Complex,
            6,
            36,
            20,
        ),
    ];

    let mut json = format!(
        "{{\n  \"benchmark\": \"matcher\",\n  \"commit\": \"{}\",\n  \"unit\": \"ms\",\n  \"workloads\": [\n",
        amber_bench::report::git_sha(),
    );
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"queries\": {}, \"answered\": {}, \"timeouts\": {}, \
             \"mean_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}}}",
            r.name,
            r.queries,
            r.summary.count,
            r.timeouts,
            json_number(r.summary.mean),
            json_number(r.summary.median),
            json_number(r.summary.p95),
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
