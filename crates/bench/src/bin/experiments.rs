//! CLI driver reproducing the paper's tables and figures.
//!
//! ```text
//! experiments table1 [flags]
//! experiments table4 [flags]
//! experiments table5 [flags]
//! experiments figures --dataset dbpedia|yago|lubm --shape star|complex [flags]
//! experiments all [flags]
//!
//! flags:
//!   --scale N          dataset scale factor        (default 1)
//!   --seed N           RNG seed                    (default 2016)
//!   --queries N        queries per size cell       (default 10)
//!   --sizes a,b,c      query sizes                 (default 10,20,30,40,50)
//!   --timeout-ms N     per-query budget            (default 1000)
//!   --threads N        AMbER worker threads        (default 1)
//!   --engines a,b      engine filter by name       (default all)
//!   --paper-scale      approximate the paper's setup (hours!)
//! ```

use amber_bench::experiments;
use amber_bench::HarnessConfig;
use amber_datagen::{Benchmark, QueryShape};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        std::process::exit(2);
    }
    let command = args[0].clone();
    let mut config = HarnessConfig::default();
    let mut dataset: Option<Benchmark> = None;
    let mut shape: Option<QueryShape> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag {
            "--scale" => config.scale = value(&mut i).parse().expect("--scale N"),
            "--seed" => config.seed = value(&mut i).parse().expect("--seed N"),
            "--queries" => config.queries_per_size = value(&mut i).parse().expect("--queries N"),
            "--sizes" => {
                config.sizes = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes a,b,c"))
                    .collect()
            }
            "--timeout-ms" => {
                config.timeout =
                    Duration::from_millis(value(&mut i).parse().expect("--timeout-ms N"))
            }
            "--threads" => config.threads = value(&mut i).parse().expect("--threads N"),
            "--engines" => {
                config.engines = value(&mut i)
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--paper-scale" => config = config.clone().paper_scale(),
            "--dataset" => {
                dataset = Some(match value(&mut i).to_ascii_lowercase().as_str() {
                    "dbpedia" => Benchmark::Dbpedia,
                    "yago" => Benchmark::Yago,
                    "lubm" => Benchmark::Lubm,
                    other => {
                        eprintln!("unknown dataset '{other}'");
                        std::process::exit(2);
                    }
                })
            }
            "--shape" => {
                shape = Some(match value(&mut i).to_ascii_lowercase().as_str() {
                    "star" => QueryShape::Star,
                    "complex" => QueryShape::Complex,
                    other => {
                        eprintln!("unknown shape '{other}'");
                        std::process::exit(2);
                    }
                })
            }
            other => {
                eprintln!("unknown flag '{other}'\n{}", usage());
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let output = match command.as_str() {
        "table1" => experiments::table1(&config),
        "table4" => experiments::table4(&config),
        "table5" => experiments::table5(&config),
        "figures" => {
            let dataset = dataset.unwrap_or(Benchmark::Dbpedia);
            let shape = shape.unwrap_or(QueryShape::Star);
            experiments::figures(dataset, shape, &config)
        }
        "all" => experiments::run_all(&config),
        "agreement" => experiments::agreement(&config),
        other => {
            eprintln!("unknown command '{other}'\n{}", usage());
            std::process::exit(2);
        }
    };
    println!("{output}");
}

fn usage() -> &'static str {
    "usage: experiments <table1|table4|table5|figures|agreement|all> \
     [--dataset dbpedia|yago|lubm] [--shape star|complex] [--scale N] [--seed N] \
     [--queries N] [--sizes a,b,c] [--timeout-ms N] [--threads N] \
     [--engines a,b] [--paper-scale]"
}
