//! A minimal JSON reader for the benchmark reports.
//!
//! The workspace vendors no serde (the build environment has no crates.io
//! mirror), and the `BENCH_*.json` trackers are written by hand-rolled
//! formatters — so the regression gate ([`bench_check`][bc]) reads them
//! back with this ~150-line recursive-descent parser. It supports exactly
//! the JSON the trackers emit: objects, arrays, strings (with the common
//! escapes), numbers, booleans, and null.
//!
//! [bc]: ../../bench_check/index.html

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`; the trackers stay well inside
    /// the 2^53 integer-exact range).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content"));
        }
        Ok(value)
    }

    /// Member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The number value, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure (byte offset + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // The trackers never emit surrogate pairs.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_tracker_shaped_document() {
        let doc = r#"{
  "benchmark": "batch",
  "commit": "abc123",
  "streams": [
    {"name": "s1", "speedup": 1.25, "hits": 40, "flag": true},
    {"name": "s2", "speedup": -0.5e1, "flag": null}
  ]
}"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("benchmark").unwrap().as_str(), Some("batch"));
        let streams = json.get("streams").unwrap().as_array().unwrap();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].get("speedup").unwrap().as_f64(), Some(1.25));
        assert_eq!(streams[0].get("hits").unwrap().as_f64(), Some(40.0));
        assert_eq!(streams[0].get("flag"), Some(&Json::Bool(true)));
        assert_eq!(streams[1].get("speedup").unwrap().as_f64(), Some(-5.0));
        assert_eq!(streams[1].get("flag"), Some(&Json::Null));
    }

    #[test]
    fn strings_unescape() {
        let json = Json::parse(r#""a\n\"b\"A""#).unwrap();
        assert_eq!(json.as_str(), Some("a\n\"b\"A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_real_reports() {
        // The committed baselines must stay parseable by this reader.
        for name in [
            "BENCH_matcher.json",
            "BENCH_batch.json",
            "BENCH_kernels.json",
            "BENCH_parallel.json",
        ] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // baseline not present in this checkout
            };
            let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(parsed.get("benchmark").is_some(), "{name} missing tag");
        }
    }
}
