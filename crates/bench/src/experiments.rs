//! The per-table / per-figure experiment drivers.

use crate::report::{fmt_ms, sweep_tables, workload_table};
use crate::runner::{build_engines, load_benchmark, run_workload, HarnessConfig, WorkloadOutcome};
use amber::AmberEngine;
use amber_datagen::{Benchmark, QueryShape, WorkloadConfig, WorkloadGenerator};
use amber_multigraph::RdfGraph;
use amber_util::heap_size::format_bytes;
use amber_util::{HeapSize, Stopwatch};
use std::fmt::Write as _;
use std::sync::Arc;

/// **Table 1** — average time for complex 50-triple queries on DBPEDIA.
///
/// Paper values (full-scale DBPEDIA, 200 queries, 60 s budget):
/// AMbER 1.56 s, gStore 11.96 s, Virtuoso 20.45 s, x-RDF-3X > 60 s.
/// The reproduction checks the *ordering*, not the absolute numbers.
pub fn table1(config: &HarnessConfig) -> String {
    let rdf = load_benchmark(Benchmark::Dbpedia, config);
    let engines = build_engines(Arc::clone(&rdf), config);
    let mut gen = WorkloadGenerator::new(&rdf, config.seed);
    let queries = gen.generate_many(
        &WorkloadConfig::new(QueryShape::Complex, 50),
        config.queries_per_size.max(20),
    );
    let outcome = run_workload(&engines, &queries, config);
    let mut out = String::new();
    writeln!(
        out,
        "## Table 1 — complex 50-triple queries on DBPEDIA ({} queries, {:?} budget)\n",
        queries.len(),
        config.timeout
    )
    .unwrap();
    out.push_str(&workload_table(&outcome));
    out
}

/// **Table 4** — benchmark statistics.
pub fn table4(config: &HarnessConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Table 4 — benchmark statistics (scale {}, seed {})\n",
        config.scale, config.seed
    )
    .unwrap();
    writeln!(
        out,
        "| Dataset | # Triples | # Vertices | # Edges | # Edge types |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|").unwrap();
    let mut topology = String::new();
    for bench in Benchmark::ALL {
        let rdf = load_benchmark(bench, config);
        let stats = rdf.stats();
        writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            bench.name(),
            stats.triples,
            stats.vertices,
            stats.edges,
            stats.edge_types
        )
        .unwrap();
        let degrees = amber_multigraph::analysis::degree_stats(&rdf);
        let skew = amber_multigraph::analysis::predicate_skew(&rdf);
        writeln!(
            topology,
            "| {} | {} | {:.1} | {} | {} | {:.0}% |",
            bench.name(),
            degrees.max,
            degrees.mean,
            degrees.p99,
            degrees.hubs_50,
            skew * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "
Topology (workload-relevant characteristics, §7.2):
"
    )
    .unwrap();
    writeln!(
        out,
        "| Dataset | max degree | mean | p99 | ≥50-triple hubs | top-10% predicate share |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|").unwrap();
    out.push_str(&topology);
    out
}

/// **Table 5** — offline stage: database and index construction time and
/// memory.
pub fn table5(config: &HarnessConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Table 5 — offline stage: database and index construction (scale {})\n",
        config.scale
    )
    .unwrap();
    writeln!(
        out,
        "| Dataset | DB build time | DB size | Index build time | Index size |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|").unwrap();
    for bench in Benchmark::ALL {
        let triples = bench.generate(config.scale, config.seed);
        let sw = Stopwatch::start();
        let rdf = RdfGraph::from_triples(&triples);
        let db_time = sw.elapsed();
        let db_bytes = rdf.heap_size();
        let engine = AmberEngine::from_graph(rdf);
        let stats = engine.offline_stats();
        writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            bench.name(),
            fmt_ms(db_time.as_secs_f64() * 1e3),
            format_bytes(db_bytes),
            fmt_ms(stats.index_build_time.as_secs_f64() * 1e3),
            format_bytes(stats.index_bytes),
        )
        .unwrap();
    }
    out
}

/// **Figures 6–11** — one (benchmark, shape) sweep over query sizes:
/// sub-figure (a) average time, sub-figure (b) % unanswered.
pub fn figures(benchmark: Benchmark, shape: QueryShape, config: &HarnessConfig) -> String {
    let rdf = load_benchmark(benchmark, config);
    let engines = build_engines(Arc::clone(&rdf), config);
    let mut gen = WorkloadGenerator::new(&rdf, config.seed);
    let mut sweep: Vec<(usize, WorkloadOutcome)> = Vec::new();
    for &size in &config.sizes {
        let queries = gen.generate_many(&WorkloadConfig::new(shape, size), config.queries_per_size);
        if queries.is_empty() {
            continue;
        }
        sweep.push((size, run_workload(&engines, &queries, config)));
    }
    let figure_number = figure_number(benchmark, shape);
    sweep_tables(
        &format!(
            "Figure {figure_number} — {} queries on {} ({} queries/size, {:?} budget)",
            shape.name(),
            benchmark.name(),
            config.queries_per_size,
            config.timeout
        ),
        &sweep,
    )
}

/// Differential-correctness sweep: run generated workloads through every
/// engine and verify the embedding counts agree (the cross-engine oracle
/// the test suite uses, exposed as a harness command for ad-hoc auditing).
/// Returns a markdown report; panics on the first disagreement.
pub fn agreement(config: &HarnessConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "## Cross-engine agreement audit (scale {}, seed {})\n",
        config.scale, config.seed
    )
    .unwrap();
    writeln!(
        out,
        "| dataset | shape | size | queries | compared | agreed |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|").unwrap();
    for bench in Benchmark::ALL {
        let rdf = load_benchmark(bench, config);
        let engines = build_engines(Arc::clone(&rdf), config);
        let mut gen = WorkloadGenerator::new(&rdf, config.seed ^ 0xa9ee);
        for shape in [QueryShape::Star, QueryShape::Complex] {
            for &size in &config.sizes {
                let queries =
                    gen.generate_many(&WorkloadConfig::new(shape, size), config.queries_per_size);
                let mut compared = 0usize;
                for q in &queries {
                    let options =
                        amber::ExecOptions::benchmark(config.timeout).with_threads(config.threads);
                    let counts: Vec<(String, Option<u128>)> = engines
                        .iter()
                        .map(|e| {
                            let outcome = e
                                .execute_query(&q.query, &options)
                                .unwrap_or_else(|err| panic!("{} failed: {err}", e.name()));
                            (
                                e.name().to_string(),
                                (!outcome.timed_out()).then_some(outcome.embedding_count),
                            )
                        })
                        .collect();
                    let answered: Vec<_> = counts
                        .iter()
                        .filter_map(|(n, c)| c.map(|c| (n, c)))
                        .collect();
                    if answered.len() >= 2 {
                        compared += 1;
                        let reference = answered[0].1;
                        for (name, count) in &answered {
                            assert_eq!(
                                *count,
                                reference,
                                "{name} disagrees on {} {} size {size}:\n{}",
                                bench.name(),
                                shape.name(),
                                q.text
                            );
                        }
                    }
                }
                writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | ✓ |",
                    bench.name(),
                    shape.name(),
                    size,
                    queries.len(),
                    compared
                )
                .unwrap();
            }
        }
    }
    out
}

/// The paper's figure numbering: 6/7 DBPEDIA, 8/9 YAGO, 10/11 LUBM
/// (star first, then complex).
pub fn figure_number(benchmark: Benchmark, shape: QueryShape) -> usize {
    let base = match benchmark {
        Benchmark::Dbpedia => 6,
        Benchmark::Yago => 8,
        Benchmark::Lubm => 10,
    };
    base + usize::from(shape == QueryShape::Complex)
}

/// Run the complete suite (all tables, all figures) and return one markdown
/// document — what `EXPERIMENTS.md` records.
pub fn run_all(config: &HarnessConfig) -> String {
    let mut out = String::new();
    writeln!(out, "{}", table4(config)).unwrap();
    writeln!(out, "{}", table5(config)).unwrap();
    writeln!(out, "{}", table1(config)).unwrap();
    for bench in Benchmark::ALL {
        for shape in [QueryShape::Star, QueryShape::Complex] {
            writeln!(out, "{}", figures(bench, shape, config)).unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: 1,
            queries_per_size: 2,
            sizes: vec![5, 10],
            timeout: Duration::from_millis(500),
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn figure_numbering_matches_paper() {
        assert_eq!(figure_number(Benchmark::Dbpedia, QueryShape::Star), 6);
        assert_eq!(figure_number(Benchmark::Dbpedia, QueryShape::Complex), 7);
        assert_eq!(figure_number(Benchmark::Yago, QueryShape::Star), 8);
        assert_eq!(figure_number(Benchmark::Yago, QueryShape::Complex), 9);
        assert_eq!(figure_number(Benchmark::Lubm, QueryShape::Star), 10);
        assert_eq!(figure_number(Benchmark::Lubm, QueryShape::Complex), 11);
    }

    #[test]
    fn table4_renders_all_benchmarks() {
        let out = table4(&tiny());
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "{out}");
        }
    }

    #[test]
    fn table5_renders_sizes() {
        let out = table5(&tiny());
        assert!(out.contains("Index build time"));
        assert!(out.contains("LUBM"));
    }

    #[test]
    fn lubm_figure_cell_runs() {
        let out = figures(Benchmark::Lubm, QueryShape::Star, &tiny());
        assert!(out.contains("Figure 10"));
        assert!(out.contains("AMbER"));
    }
}
