#![warn(missing_docs)]
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§7).
//!
//! | Paper artifact | Harness entry point |
//! |---|---|
//! | Table 1 (200 complex 50-triple queries, DBPEDIA) | [`experiments::table1`] |
//! | Table 4 (benchmark statistics) | [`experiments::table4`] |
//! | Table 5 (offline build time + memory) | [`experiments::table5`] |
//! | Fig. 6–11 (star/complex × 3 benchmarks, sizes 10–50) | [`experiments::figures`] |
//! | Cross-engine differential audit (not in the paper) | [`experiments::agreement`] |
//!
//! The binary `experiments` exposes these as subcommands; `cargo bench`
//! exercises the micro/ablation side (see `benches/`).

pub mod experiments;
pub mod minijson;
pub mod report;
pub mod runner;

pub use runner::{EngineRow, HarnessConfig, WorkloadOutcome};
