//! The paper's running example (Fig. 1 and Fig. 2) as a reusable fixture.
//!
//! The RDF tripleset of Fig. 1a, interned so that vertex / edge-type /
//! attribute identifiers match Table 2 *exactly* (`v0` = Music_Band, `t0` =
//! isPartOf, `a0` = `<hasCapacityOf, "90000">`, …). Downstream crates test
//! their index structures and the matcher against the worked examples of
//! §4 and §5 using this fixture.
//!
//! Two inconsistencies in the paper's figures are resolved in favour of a
//! satisfiable example (the walkthrough in §4.3 and Fig. 2c confirm the
//! intent):
//!
//! * Fig. 2a writes `?X0 y:livedIn ?X1` but Fig. 2c and the §4.3 example use
//!   the edge type `t5` (wasBornIn) between `u0` and `u1` — we use
//!   `wasBornIn`;
//! * Fig. 2a writes `"1934"` for the founding year while Fig. 1a and
//!   Table 2c carry `"1994"` — we use `"1994"` (attribute `a1`).

use crate::builder::{GraphBuilder, RdfGraph};
use rdf_model::{Literal, Triple};

/// Namespace of entity IRIs (`x:` in the paper).
pub const PREFIX_X: &str = "http://dbpedia.org/resource/";
/// Namespace of predicate IRIs (`y:` in the paper).
pub const PREFIX_Y: &str = "http://dbpedia.org/ontology/";

/// Number of homomorphic embeddings of the running-example query in the
/// running-example data (`?X0 ∈ {Amy_Winehouse, Christopher_Nolan}`, all
/// other variables forced).
pub const PAPER_QUERY_EMBEDDINGS: usize = 2;

fn x(local: &str) -> String {
    format!("{PREFIX_X}{local}")
}

fn y(local: &str) -> String {
    format!("{PREFIX_Y}{local}")
}

/// The 16 triples of Fig. 1a (canonical predicate spellings).
pub fn paper_triples() -> Vec<Triple> {
    vec![
        Triple::resource(&x("London"), &y("isPartOf"), &x("England")),
        Triple::resource(&x("England"), &y("hasCapital"), &x("London")),
        Triple::resource(&x("Christopher_Nolan"), &y("wasBornIn"), &x("London")),
        Triple::resource(&x("Christopher_Nolan"), &y("livedIn"), &x("England")),
        Triple::resource(
            &x("Christopher_Nolan"),
            &y("isPartOf"),
            &x("Dark_Knight_Trilogy"),
        ),
        Triple::resource(&x("London"), &y("hasStadium"), &x("WembleyStadium")),
        Triple::literal(&x("WembleyStadium"), &y("hasCapacityOf"), "90000"),
        Triple::resource(&x("Amy_Winehouse"), &y("wasBornIn"), &x("London")),
        Triple::resource(&x("Amy_Winehouse"), &y("diedIn"), &x("London")),
        Triple::resource(&x("Amy_Winehouse"), &y("wasPartOf"), &x("Music_Band")),
        Triple::literal(&x("Music_Band"), &y("hasName"), "MCA_Band"),
        Triple::literal(&x("Music_Band"), &y("wasFoundedIn"), "1994"),
        Triple::resource(&x("Music_Band"), &y("wasFormedIn"), &x("London")),
        Triple::resource(&x("Amy_Winehouse"), &y("livedIn"), &x("United_States")),
        Triple::resource(
            &x("Amy_Winehouse"),
            &y("wasMarriedTo"),
            &x("Blake_Fielder-Civil"),
        ),
        Triple::resource(
            &x("Blake_Fielder-Civil"),
            &y("livedIn"),
            &x("United_States"),
        ),
    ]
}

/// Vertex dictionary order of Table 2a (`v0` … `v8`).
pub const VERTEX_ORDER: [&str; 9] = [
    "Music_Band",
    "Amy_Winehouse",
    "London",
    "England",
    "WembleyStadium",
    "United_States",
    "Blake_Fielder-Civil",
    "Christopher_Nolan",
    "Dark_Knight_Trilogy",
];

/// Edge-type dictionary order of Table 2b (`t0` … `t8`).
pub const EDGE_TYPE_ORDER: [&str; 9] = [
    "isPartOf",
    "hasCapital",
    "hasStadium",
    "livedIn",
    "diedIn",
    "wasBornIn",
    "wasFormedIn",
    "wasPartOf",
    "wasMarriedTo",
];

/// The data multigraph of Fig. 1c with Table 2's exact id assignment.
pub fn paper_graph() -> RdfGraph {
    let mut builder = GraphBuilder::new();
    for local in VERTEX_ORDER {
        builder.declare_vertex(&x(local));
    }
    for local in EDGE_TYPE_ORDER {
        builder.declare_edge_type(&y(local));
    }
    // Table 2c: a0, a1, a2.
    builder.declare_attribute(&y("hasCapacityOf"), &Literal::plain("90000"));
    builder.declare_attribute(&y("wasFoundedIn"), &Literal::plain("1994"));
    builder.declare_attribute(&y("hasName"), &Literal::plain("MCA_Band"));
    let triples = paper_triples();
    builder.add_triples(&triples);
    builder.finish()
}

/// The running-example SPARQL query (Fig. 2a, consistent variant).
pub fn paper_query_text() -> String {
    format!(
        r#"PREFIX x: <{PREFIX_X}>
PREFIX y: <{PREFIX_Y}>
SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {{
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:wasFoundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}}"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{QVertexId, VertexId};
    use crate::query_graph::QueryGraph;
    use crate::signature::{Synopsis, VertexSignature};
    use amber_sparql::parse_select;

    #[test]
    fn table_2a_vertex_ids() {
        let rdf = paper_graph();
        for (i, local) in VERTEX_ORDER.iter().enumerate() {
            assert_eq!(
                rdf.vertex_by_key(&x(local)),
                Some(VertexId(i as u32)),
                "vertex {local} should be v{i}"
            );
        }
    }

    #[test]
    fn table_2b_edge_type_ids() {
        let rdf = paper_graph();
        for (i, local) in EDGE_TYPE_ORDER.iter().enumerate() {
            assert_eq!(rdf.edge_type_by_iri(&y(local)).unwrap().0, i as u32);
        }
    }

    #[test]
    fn table_2c_attribute_ids() {
        let rdf = paper_graph();
        let dicts = rdf.dictionaries();
        assert_eq!(
            dicts
                .attribute(&y("hasCapacityOf"), &Literal::plain("90000"))
                .unwrap()
                .0,
            0
        );
        assert_eq!(
            dicts
                .attribute(&y("wasFoundedIn"), &Literal::plain("1994"))
                .unwrap()
                .0,
            1
        );
        assert_eq!(
            dicts
                .attribute(&y("hasName"), &Literal::plain("MCA_Band"))
                .unwrap()
                .0,
            2
        );
    }

    #[test]
    fn figure_1c_statistics() {
        let rdf = paper_graph();
        let stats = rdf.stats();
        assert_eq!(stats.triples, 16);
        assert_eq!(stats.vertices, 9);
        assert_eq!(stats.edges, 12); // directed pairs (Amy→London merges 2 types)
        assert_eq!(stats.edge_types, 9);
        assert_eq!(stats.attributes, 3);
    }

    /// Every synopsis row of Table 3, verbatim.
    #[test]
    fn table_3_synopses() {
        let rdf = paper_graph();
        let g = rdf.graph();
        let expected: [[i64; 8]; 9] = [
            [1, 1, -7, 7, 1, 1, -6, 6], // v0 Music_Band
            [0, 0, 0, 0, 2, 5, -3, 8],  // v1 Amy_Winehouse
            [2, 4, -1, 6, 1, 2, 0, 2],  // v2 London
            [1, 2, 0, 3, 1, 1, -1, 1],  // v3 England
            [1, 1, -2, 2, 0, 0, 0, 0],  // v4 WembleyStadium
            [1, 1, -3, 3, 0, 0, 0, 0],  // v5 United_States
            [1, 1, -8, 8, 1, 1, -3, 3], // v6 Blake_Fielder-Civil
            [0, 0, 0, 0, 1, 3, 0, 5],   // v7 Christopher_Nolan
            [1, 1, 0, 0, 0, 0, 0, 0],   // v8 Dark_Knight_Trilogy
        ];
        for (i, row) in expected.iter().enumerate() {
            let syn = VertexSignature::of_data_vertex(g, VertexId(i as u32)).synopsis();
            assert_eq!(
                syn,
                Synopsis(*row),
                "synopsis mismatch for v{i} ({})",
                rdf.vertex_name(VertexId(i as u32))
            );
        }
    }

    #[test]
    fn figure_2c_query_graph_shape() {
        let rdf = paper_graph();
        let query = parse_select(&paper_query_text()).unwrap();
        let qg = QueryGraph::build(&query, &rdf).unwrap();
        assert!(!qg.is_unsatisfiable());
        assert_eq!(qg.vertex_count(), 7);

        let u = |name: &str| qg.vertex_by_name(name).unwrap();
        // Degrees (variable neighbours): X1 = {X0,X2,X4,X3,X5} = 5, X3 = 3,
        // X5 = 2, satellites = 1.
        assert_eq!(qg.degree(u("X1")), 5);
        assert_eq!(qg.degree(u("X3")), 3);
        assert_eq!(qg.degree(u("X5")), 2);
        for sat in ["X0", "X2", "X4", "X6"] {
            assert_eq!(qg.degree(u(sat)), 1, "{sat} must be a satellite");
        }

        // u5 carries {a1, a2} (Fig. 2c), u4 carries {a0}.
        assert_eq!(
            qg.vertex(u("X5")).attrs,
            vec![crate::ids::AttrId(1), crate::ids::AttrId(2)]
        );
        assert_eq!(qg.vertex(u("X4")).attrs, vec![crate::ids::AttrId(0)]);

        // X3 has the United_States IRI vertex with an outgoing livedIn edge.
        let x3 = qg.vertex(u("X3"));
        assert_eq!(x3.iri_constraints.len(), 1);
        let c = &x3.iri_constraints[0];
        assert_eq!(rdf.vertex_name(c.data_vertex), x("United_States"));
        assert_eq!(c.direction, crate::data_graph::Direction::Outgoing);
        assert_eq!(c.types.types(), &[crate::ids::EdgeTypeId(3)]);

        // The X3→X1 multi-edge merges diedIn (t4) and wasBornIn (t5).
        let m = qg.multi_edge(u("X3"), u("X1")).unwrap();
        assert_eq!(
            m.types(),
            &[crate::ids::EdgeTypeId(4), crate::ids::EdgeTypeId(5)]
        );

        // Everything is one connected component.
        assert_eq!(qg.connected_components().len(), 1);
        let _ = QVertexId(0); // silence unused import lint in some cfgs
    }

    #[test]
    fn query_vertex_signatures_match_figure_2c() {
        let rdf = paper_graph();
        let query = parse_select(&paper_query_text()).unwrap();
        let qg = QueryGraph::build(&query, &rdf).unwrap();
        let u = |name: &str| qg.vertex_by_name(name).unwrap();

        // §4.2: σ_u0 = {-t5} → synopsis [0,0,0,0,1,1,-5,5].
        assert_eq!(
            qg.signature(u("X0")).synopsis(),
            Synopsis([0, 0, 0, 0, 1, 1, -5, 5])
        );
        // u5: incoming {t7} (from X3), outgoing {t6} (to X1).
        assert_eq!(
            qg.signature(u("X5")).synopsis(),
            Synopsis([1, 1, -7, 7, 1, 1, -6, 6])
        );
    }
}
