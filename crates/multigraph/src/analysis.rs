//! Graph characterization: the measurements behind Table 4's "different
//! characteristics in terms of number of vertices, edges and distinct
//! predicates" (§7.1).
//!
//! The workload generator and the evaluation both depend on topology —
//! hub-heavy degree distributions make size-50 star queries possible, and
//! predicate skew drives index selectivity — so the harness reports these
//! distributions alongside the raw counts.

use crate::builder::RdfGraph;
use crate::ids::EdgeTypeId;

/// Degree-distribution summary of a data multigraph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Maximum incident-triple count (edge instances + attributes).
    pub max: usize,
    /// Mean incident-triple count.
    pub mean: f64,
    /// Median incident-triple count.
    pub median: usize,
    /// 99th-percentile incident-triple count.
    pub p99: usize,
    /// Number of vertices with ≥ 50 incident triples (size-50 star seeds).
    pub hubs_50: usize,
}

/// Incident triples of one vertex: edge-type instances in both directions
/// plus attributes (the quantity the §7.2 star generator thresholds on).
pub fn incident_triples(rdf: &RdfGraph, v: crate::ids::VertexId) -> usize {
    let g = rdf.graph();
    g.out_edges(v)
        .iter()
        .chain(g.in_edges(v))
        .map(|e| e.types.len())
        .sum::<usize>()
        + g.attributes(v).len()
}

/// Compute the degree distribution.
pub fn degree_stats(rdf: &RdfGraph) -> DegreeStats {
    let g = rdf.graph();
    let mut degrees: Vec<usize> = g.vertices().map(|v| incident_triples(rdf, v)).collect();
    if degrees.is_empty() {
        return DegreeStats {
            vertices: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            p99: 0,
            hubs_50: 0,
        };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    DegreeStats {
        vertices: n,
        max: degrees[n - 1],
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        median: degrees[(n - 1) / 2],
        p99: degrees[((n as f64 * 0.99) as usize).min(n - 1)],
        hubs_50: degrees.iter().filter(|&&d| d >= 50).count(),
    }
}

/// Per-predicate usage: `(edge type, instance count)`, descending.
pub fn predicate_histogram(rdf: &RdfGraph) -> Vec<(EdgeTypeId, usize)> {
    let g = rdf.graph();
    let mut counts = vec![0usize; rdf.dictionaries().edge_types.len()];
    for v in g.vertices() {
        for e in g.out_edges(v) {
            for &t in e.types.types() {
                counts[t.index()] += 1;
            }
        }
    }
    let mut histogram: Vec<(EdgeTypeId, usize)> = counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (EdgeTypeId(i as u32), c))
        .collect();
    histogram.sort_by_key(|&(t, c)| (std::cmp::Reverse(c), t));
    histogram
}

/// Skew measure: the fraction of edge instances carried by the top 10% of
/// predicates (1.0 = maximally skewed, ~0.1 = uniform).
pub fn predicate_skew(rdf: &RdfGraph) -> f64 {
    let histogram = predicate_histogram(rdf);
    let total: usize = histogram.iter().map(|&(_, c)| c).sum();
    if total == 0 || histogram.is_empty() {
        return 0.0;
    }
    let top = histogram.len().div_ceil(10);
    let top_sum: usize = histogram.iter().take(top).map(|&(_, c)| c).sum();
    top_sum as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_graph;
    use crate::RdfGraph;

    #[test]
    fn paper_graph_degrees() {
        let rdf = paper_graph();
        let stats = degree_stats(&rdf);
        assert_eq!(stats.vertices, 9);
        // London (v2) carries 7 incident edge instances — the maximum.
        assert_eq!(stats.max, 7);
        assert_eq!(stats.hubs_50, 0);
        assert!(stats.mean > 0.0);
        assert!(stats.median <= stats.p99);
        assert!(stats.p99 <= stats.max);
    }

    #[test]
    fn incident_triples_counts_attributes() {
        let rdf = paper_graph();
        // Wembley: 1 incoming hasStadium + 1 attribute.
        let wembley = rdf
            .vertex_by_key("http://dbpedia.org/resource/WembleyStadium")
            .unwrap();
        assert_eq!(incident_triples(&rdf, wembley), 2);
    }

    #[test]
    fn histogram_is_sorted_and_complete() {
        let rdf = paper_graph();
        let histogram = predicate_histogram(&rdf);
        assert_eq!(histogram.len(), 9);
        assert!(histogram.windows(2).all(|w| w[0].1 >= w[1].1));
        let total: usize = histogram.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, rdf.graph().edge_instance_count());
        // livedIn (t3) is the most used predicate (3 instances).
        assert_eq!(histogram[0].0, EdgeTypeId(3));
        assert_eq!(histogram[0].1, 3);
    }

    #[test]
    fn skew_bounds() {
        let rdf = paper_graph();
        let skew = predicate_skew(&rdf);
        assert!(skew > 0.0 && skew <= 1.0);
        let empty = RdfGraph::from_triples([]);
        assert_eq!(predicate_skew(&empty), 0.0);
        assert_eq!(degree_stats(&empty).vertices, 0);
    }
}
