//! Dense typed identifiers.
//!
//! Dictionary values (paper Table 2) are dense `u32` indexes. Newtypes keep
//! vertex / edge-type / attribute / query-vertex spaces from being mixed up
//! at compile time while still being free to copy.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(transparent)]
        pub struct $name(pub u32);

        // SAFETY: `repr(transparent)` over `u32` and the derived `Ord` is
        // the wrapped integer's order — exactly what `U32Rep` requires, so
        // id slices run on the SIMD set-algebra kernels without conversion.
        unsafe impl amber_util::sorted::U32Rep for $name {}

        impl $name {
            /// The identifier as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index (panics on overflow).
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("identifier space exceeded u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl amber_util::HeapSize for $name {
            fn heap_size(&self) -> usize {
                0
            }
        }
    };
}

id_type!(
    /// A data-graph vertex (`v ∈ V`, paper §2.1.1).
    VertexId,
    "v"
);
id_type!(
    /// An edge type — a mapped predicate (`t ∈ T`, paper Table 2b).
    EdgeTypeId,
    "t"
);
id_type!(
    /// A vertex attribute — a mapped `<predicate, literal>` pair
    /// (`a ∈ A`, paper Table 2c).
    AttrId,
    "a"
);
id_type!(
    /// A query-graph vertex (`u ∈ U`, paper §2.2.1).
    QVertexId,
    "u"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(VertexId(2).to_string(), "v2");
        assert_eq!(EdgeTypeId(5).to_string(), "t5");
        assert_eq!(AttrId(0).to_string(), "a0");
        assert_eq!(QVertexId(3).to_string(), "u3");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(VertexId::from_index(7).index(), 7);
        assert_eq!(VertexId::from_index(7), VertexId(7));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeTypeId(0) < EdgeTypeId(10));
    }

    #[test]
    #[should_panic(expected = "identifier space")]
    fn from_index_overflow_panics() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }
}
