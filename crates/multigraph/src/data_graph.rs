//! The immutable data multigraph `G` (paper Definition 1, Fig. 1c).
//!
//! Directed, vertex-attributed: vertices are mapped subject/object IRIs,
//! every directed vertex pair carries a *multi-edge* (a set of edge types),
//! and each vertex owns a set of attributes (mapped `<predicate, literal>`
//! pairs). Adjacency is stored twice (outgoing and incoming), sorted by
//! neighbour id, so both edge directions resolve with a binary search.

use crate::ids::{AttrId, EdgeTypeId, VertexId};
use amber_util::HeapSize;

/// Edge direction relative to a vertex.
///
/// The paper labels incoming edges `+` (positive, the default) and outgoing
/// edges `-` (negative) — §2.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `+`: an edge arriving at the vertex.
    Incoming,
    /// `-`: an edge leaving the vertex.
    Outgoing,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Self {
        match self {
            Direction::Incoming => Direction::Outgoing,
            Direction::Outgoing => Direction::Incoming,
        }
    }

    /// Paper notation: `+` for incoming, `-` for outgoing.
    pub fn sign(self) -> char {
        match self {
            Direction::Incoming => '+',
            Direction::Outgoing => '-',
        }
    }
}

/// A multi-edge: the sorted, deduplicated set of edge types between one
/// ordered vertex pair (paper §2.1.1 — "multiple edges (predicates) can
/// appear between the same pair of vertices").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MultiEdge(Box<[EdgeTypeId]>);

impl MultiEdge {
    /// Build from an arbitrary list of types (sorted + deduplicated here).
    pub fn new(mut types: Vec<EdgeTypeId>) -> Self {
        types.sort_unstable();
        types.dedup();
        Self(types.into_boxed_slice())
    }

    /// The sorted edge types.
    pub fn types(&self) -> &[EdgeTypeId] {
        &self.0
    }

    /// Number of edge types in the multi-edge (its cardinality, the paper's
    /// `|σ(u)_j|`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the multi-edge carries no types (never stored).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Does this multi-edge contain every type of `other`? (the `⊆` of
    /// Definition 2, condition 2)
    pub fn contains_all(&self, other: &[EdgeTypeId]) -> bool {
        amber_util::sorted::is_subset(other, &self.0)
    }

    /// Membership test for one type.
    pub fn contains(&self, t: EdgeTypeId) -> bool {
        self.0.binary_search(&t).is_ok()
    }
}

impl HeapSize for MultiEdge {
    fn heap_size(&self) -> usize {
        self.0.heap_size()
    }
}

impl FromIterator<EdgeTypeId> for MultiEdge {
    fn from_iter<I: IntoIterator<Item = EdgeTypeId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// One adjacency entry: a neighbour and the multi-edge shared with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjEntry {
    /// The neighbouring vertex.
    pub neighbor: VertexId,
    /// The multi-edge between the two vertices (direction given by which
    /// adjacency list the entry lives in).
    pub types: MultiEdge,
}

impl HeapSize for AdjEntry {
    fn heap_size(&self) -> usize {
        self.types.heap_size()
    }
}

/// The data multigraph `G = (V, E, L_V, L_E)`.
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    /// Outgoing adjacency per vertex, sorted by neighbour.
    out_adj: Vec<Box<[AdjEntry]>>,
    /// Incoming adjacency per vertex, sorted by neighbour.
    in_adj: Vec<Box<[AdjEntry]>>,
    /// Sorted attribute set per vertex (`L_V`).
    attrs: Vec<Box<[AttrId]>>,
    /// Count of directed vertex pairs with at least one edge (`|E|`).
    edge_pair_count: usize,
    /// Count of `(pair, type)` edges, i.e. resource triples.
    edge_instance_count: usize,
    /// Number of distinct edge types used (`|T|`).
    edge_type_count: usize,
}

impl DataGraph {
    /// Assemble a graph from per-vertex adjacency and attribute lists.
    ///
    /// Invariants checked in debug builds: equal lengths, sorted adjacency,
    /// sorted attributes, in/out symmetry is the builder's responsibility.
    pub(crate) fn from_parts(
        out_adj: Vec<Box<[AdjEntry]>>,
        in_adj: Vec<Box<[AdjEntry]>>,
        attrs: Vec<Box<[AttrId]>>,
        edge_type_count: usize,
    ) -> Self {
        debug_assert_eq!(out_adj.len(), in_adj.len());
        debug_assert_eq!(out_adj.len(), attrs.len());
        debug_assert!(out_adj
            .iter()
            .all(|adj| adj.windows(2).all(|w| w[0].neighbor < w[1].neighbor)));
        debug_assert!(in_adj
            .iter()
            .all(|adj| adj.windows(2).all(|w| w[0].neighbor < w[1].neighbor)));
        let edge_pair_count = out_adj.iter().map(|adj| adj.len()).sum();
        let edge_instance_count = out_adj
            .iter()
            .flat_map(|adj| adj.iter())
            .map(|e| e.types.len())
            .sum();
        Self {
            out_adj,
            in_adj,
            attrs,
            edge_pair_count,
            edge_instance_count,
            edge_type_count,
        }
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed vertex pairs carrying a multi-edge (`|E|` — the
    /// "# Edges" column of Table 4).
    pub fn edge_pair_count(&self) -> usize {
        self.edge_pair_count
    }

    /// Number of `(pair, edge-type)` instances — the resource-triple count.
    pub fn edge_instance_count(&self) -> usize {
        self.edge_instance_count
    }

    /// Number of distinct edge types (`|T|` — "# Edge types" of Table 4).
    pub fn edge_type_count(&self) -> usize {
        self.edge_type_count
    }

    /// Iterate all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// The outgoing adjacency of `v` (sorted by neighbour).
    pub fn out_edges(&self, v: VertexId) -> &[AdjEntry] {
        &self.out_adj[v.index()]
    }

    /// The incoming adjacency of `v` (sorted by neighbour).
    pub fn in_edges(&self, v: VertexId) -> &[AdjEntry] {
        &self.in_adj[v.index()]
    }

    /// Adjacency of `v` in the given direction.
    pub fn edges(&self, v: VertexId, direction: Direction) -> &[AdjEntry] {
        match direction {
            Direction::Incoming => self.in_edges(v),
            Direction::Outgoing => self.out_edges(v),
        }
    }

    /// The multi-edge of the directed pair `(from, to)`, if present.
    pub fn multi_edge(&self, from: VertexId, to: VertexId) -> Option<&MultiEdge> {
        let adj = &self.out_adj[from.index()];
        adj.binary_search_by_key(&to, |e| e.neighbor)
            .ok()
            .map(|i| &adj[i].types)
    }

    /// Does `(from, to)` carry every type in (sorted) `required`?
    /// (Definition 2, condition 2.)
    pub fn has_multi_edge(&self, from: VertexId, to: VertexId, required: &[EdgeTypeId]) -> bool {
        self.multi_edge(from, to)
            .is_some_and(|m| m.contains_all(required))
    }

    /// The sorted attribute set of `v` (`L_V(v)`).
    pub fn attributes(&self, v: VertexId) -> &[AttrId] {
        &self.attrs[v.index()]
    }

    /// Does `v` own every attribute in (sorted) `required`?
    /// (Definition 2, condition 1.)
    pub fn has_attributes(&self, v: VertexId, required: &[AttrId]) -> bool {
        amber_util::sorted::is_subset(required, &self.attrs[v.index()])
    }

    /// Undirected degree: number of distinct neighbours over both directions.
    pub fn degree(&self, v: VertexId) -> usize {
        let out = self.out_adj[v.index()].iter().map(|e| e.neighbor);
        let inc = self.in_adj[v.index()].iter().map(|e| e.neighbor);
        // Both lists are sorted; count the union by merging.
        let mut count = 0;
        let mut out = out.peekable();
        let mut inc = inc.peekable();
        loop {
            match (out.peek(), inc.peek()) {
                (Some(a), Some(b)) => {
                    use std::cmp::Ordering::*;
                    match a.cmp(b) {
                        Less => {
                            out.next();
                        }
                        Greater => {
                            inc.next();
                        }
                        Equal => {
                            out.next();
                            inc.next();
                        }
                    }
                    count += 1;
                }
                (Some(_), None) => {
                    out.next();
                    count += 1;
                }
                (None, Some(_)) => {
                    inc.next();
                    count += 1;
                }
                (None, None) => break,
            }
        }
        count
    }
}

impl HeapSize for DataGraph {
    fn heap_size(&self) -> usize {
        self.out_adj.heap_size() + self.in_adj.heap_size() + self.attrs.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> MultiEdge {
        MultiEdge::new(ids.iter().map(|&i| EdgeTypeId(i)).collect())
    }

    fn tiny_graph() -> DataGraph {
        // v0 --{t0,t1}--> v1, v1 --{t0}--> v2, v0 --{t2}--> v2, v2 --{t1}--> v2 (self loop)
        let out = vec![
            vec![
                AdjEntry {
                    neighbor: VertexId(1),
                    types: t(&[0, 1]),
                },
                AdjEntry {
                    neighbor: VertexId(2),
                    types: t(&[2]),
                },
            ]
            .into_boxed_slice(),
            vec![AdjEntry {
                neighbor: VertexId(2),
                types: t(&[0]),
            }]
            .into_boxed_slice(),
            vec![AdjEntry {
                neighbor: VertexId(2),
                types: t(&[1]),
            }]
            .into_boxed_slice(),
        ];
        let inn = vec![
            vec![].into_boxed_slice(),
            vec![AdjEntry {
                neighbor: VertexId(0),
                types: t(&[0, 1]),
            }]
            .into_boxed_slice(),
            vec![
                AdjEntry {
                    neighbor: VertexId(0),
                    types: t(&[2]),
                },
                AdjEntry {
                    neighbor: VertexId(1),
                    types: t(&[0]),
                },
                AdjEntry {
                    neighbor: VertexId(2),
                    types: t(&[1]),
                },
            ]
            .into_boxed_slice(),
        ];
        let attrs = vec![
            vec![AttrId(0), AttrId(1)].into_boxed_slice(),
            vec![].into_boxed_slice(),
            vec![AttrId(1)].into_boxed_slice(),
        ];
        DataGraph::from_parts(out, inn, attrs, 3)
    }

    #[test]
    fn counts() {
        let g = tiny_graph();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_pair_count(), 4);
        assert_eq!(g.edge_instance_count(), 5);
        assert_eq!(g.edge_type_count(), 3);
    }

    #[test]
    fn multi_edge_lookup() {
        let g = tiny_graph();
        assert_eq!(g.multi_edge(VertexId(0), VertexId(1)), Some(&t(&[0, 1])));
        assert_eq!(g.multi_edge(VertexId(1), VertexId(0)), None);
        assert!(g.has_multi_edge(VertexId(0), VertexId(1), &[EdgeTypeId(1)]));
        assert!(!g.has_multi_edge(VertexId(0), VertexId(1), &[EdgeTypeId(2)]));
        assert!(g.has_multi_edge(VertexId(0), VertexId(1), &[]));
    }

    #[test]
    fn attribute_lookup() {
        let g = tiny_graph();
        assert!(g.has_attributes(VertexId(0), &[AttrId(0)]));
        assert!(g.has_attributes(VertexId(0), &[AttrId(0), AttrId(1)]));
        assert!(!g.has_attributes(VertexId(1), &[AttrId(0)]));
        assert!(g.has_attributes(VertexId(1), &[]));
    }

    #[test]
    fn degree_counts_distinct_neighbors_including_self() {
        let g = tiny_graph();
        assert_eq!(g.degree(VertexId(0)), 2); // v1, v2
        assert_eq!(g.degree(VertexId(1)), 2); // v0, v2
        assert_eq!(g.degree(VertexId(2)), 3); // v0, v1, v2(self)
    }

    #[test]
    fn multi_edge_normalizes() {
        let m = MultiEdge::new(vec![EdgeTypeId(3), EdgeTypeId(1), EdgeTypeId(3)]);
        assert_eq!(m.types(), &[EdgeTypeId(1), EdgeTypeId(3)]);
        assert!(m.contains(EdgeTypeId(3)));
        assert!(!m.contains(EdgeTypeId(2)));
        assert!(m.contains_all(&[EdgeTypeId(1)]));
        assert!(!m.contains_all(&[EdgeTypeId(1), EdgeTypeId(2)]));
    }

    #[test]
    fn direction_flip_and_sign() {
        assert_eq!(Direction::Incoming.flip(), Direction::Outgoing);
        assert_eq!(Direction::Outgoing.flip(), Direction::Incoming);
        assert_eq!(Direction::Incoming.sign(), '+');
        assert_eq!(Direction::Outgoing.sign(), '-');
    }
}
