#![warn(missing_docs)]
//! Attributed directed multigraph model (paper §2).
//!
//! The paper's offline stage transforms an RDF tripleset into a *directed,
//! vertex-attributed multigraph* `G = (V, E, L_V, L_E)` (Definition 1) via
//! three dictionaries (Table 2):
//!
//! * subjects and IRI objects become vertices (`Mv`),
//! * predicates become edge types (`Me`),
//! * `<predicate, literal-object>` pairs become vertex attributes (`Ma`).
//!
//! SPARQL queries are transformed the same way into a query multigraph `Q`
//! (§2.2.1), and query answering becomes sub-multigraph homomorphism
//! (Definition 2). This crate supplies:
//!
//! * [`ids`] — dense typed identifiers ([`VertexId`], [`EdgeTypeId`],
//!   [`AttrId`]),
//! * [`dictionary`] — the interning dictionaries and their bundle
//!   [`Dictionaries`],
//! * [`data_graph`] — the immutable CSR-style [`DataGraph`],
//! * [`builder`] — streaming construction of graph + dictionaries from
//!   triples, including the literals-as-vertices extension mode,
//! * [`signature`] — vertex signatures and the 8-field synopses of §4.2
//!   (Table 3),
//! * [`query_graph`] — the query multigraph [`QueryGraph`] with core/satellite
//!   classification inputs, IRI constraints, self-loops and ground checks,
//! * [`paper`] — the running example of Fig. 1/Fig. 2 as a reusable fixture.

pub mod analysis;
pub mod builder;
pub mod data_graph;
pub mod dictionary;
pub mod ids;
pub mod paper;
pub mod query_graph;
pub mod signature;
pub mod snapshot;

pub use builder::{GraphBuilder, GraphConfig, RdfGraph};
pub use data_graph::{AdjEntry, DataGraph, Direction, MultiEdge};
pub use dictionary::{Dictionaries, Dictionary};
pub use ids::{AttrId, EdgeTypeId, QVertexId, VertexId};
pub use query_graph::{GroundCheck, IriConstraint, QueryEdge, QueryGraph, QueryVertex};
pub use signature::{Synopsis, VertexSignature};
pub use snapshot::SnapshotError;
