//! The query multigraph `Q` (paper §2.2.1, Fig. 2c).
//!
//! A parsed SPARQL query is transformed against a loaded [`RdfGraph`]:
//!
//! * every variable becomes a query vertex `u ∈ U`,
//! * predicates are mapped through the edge-type dictionary (`Me`),
//! * constant literal objects fold into vertex attributes `u.A` (`Ma`),
//! * constant IRIs attached to a variable become *IRI vertices* `u.R`
//!   (the shaded squares of Fig. 2c) — each knows its unique data vertex,
//! * patterns mentioning no variable at all become *ground checks* (boolean
//!   guards),
//! * `?x p ?x` patterns become self-loop constraints.
//!
//! A query that references an IRI / predicate / literal absent from the
//! data dictionaries is **unsatisfiable**: it is still constructed (so the
//! caller can inspect it) but flagged, and every engine short-circuits to an
//! empty answer — the paper's model gives this for free because dictionary
//! lookup fails.

use crate::builder::RdfGraph;
use crate::data_graph::{Direction, MultiEdge};
use crate::ids::{AttrId, EdgeTypeId, QVertexId, VertexId};
use crate::signature::VertexSignature;
use amber_sparql::{SelectQuery, TermPattern};
use amber_util::FxHashMap;
use std::fmt;

/// Construction failure (malformed AST, not data-dependent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryGraphError {
    /// The AST contains a variable predicate (outside the paper's fragment).
    VariablePredicate(Box<str>),
    /// The AST contains a literal in subject position.
    LiteralSubject,
    /// The AST contains a literal predicate.
    LiteralPredicate,
}

impl fmt::Display for QueryGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryGraphError::VariablePredicate(v) => {
                write!(f, "variable predicate ?{v} is not supported (paper §2.2)")
            }
            QueryGraphError::LiteralSubject => write!(f, "literal in subject position"),
            QueryGraphError::LiteralPredicate => write!(f, "literal in predicate position"),
        }
    }
}

impl std::error::Error for QueryGraphError {}

/// An IRI vertex `u^iri ∈ u.R` attached to a query vertex (paper §2.2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IriConstraint {
    /// The unique data vertex the IRI maps to.
    pub data_vertex: VertexId,
    /// Direction relative to the query vertex: [`Direction::Incoming`] means
    /// the edge runs IRI → variable.
    pub direction: Direction,
    /// The multi-edge between variable and IRI vertex.
    pub types: MultiEdge,
}

/// A query vertex `u ∈ U`: one SPARQL variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryVertex {
    /// The variable name (without `?`).
    pub name: Box<str>,
    /// Sorted attribute requirements `u.A` (from constant-literal objects).
    pub attrs: Vec<AttrId>,
    /// IRI vertices `u.R` attached to this variable.
    pub iri_constraints: Vec<IriConstraint>,
    /// Required self-loop types (`?x p ?x` patterns).
    pub self_loop: Option<MultiEdge>,
}

/// A directed multi-edge between two query vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEdge {
    /// Source query vertex.
    pub from: QVertexId,
    /// Target query vertex.
    pub to: QVertexId,
    /// Merged edge types (`L^Q_E(from, to)`).
    pub types: MultiEdge,
}

/// A pattern with no variables: evaluated once as a boolean guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundCheck {
    /// `<s> <p> <o>` — the data must contain the edge with all types.
    Edge {
        /// Subject data vertex.
        from: VertexId,
        /// Object data vertex.
        to: VertexId,
        /// Required types.
        types: MultiEdge,
    },
    /// `<s> <p> "lit"` — the subject vertex must own the attributes.
    Attribute {
        /// Subject data vertex.
        vertex: VertexId,
        /// Required (sorted) attributes.
        attrs: Vec<AttrId>,
    },
}

/// One adjacency record of a query vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QAdj {
    /// The neighbouring query vertex.
    pub neighbor: QVertexId,
    /// Direction relative to the owning vertex.
    pub direction: Direction,
    /// Index into [`QueryGraph::edges`].
    pub edge: usize,
}

/// The query multigraph `Q = (U, E_Q, L_U, L^Q_E)`.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    vertices: Vec<QueryVertex>,
    edges: Vec<QueryEdge>,
    adj: Vec<Vec<QAdj>>,
    ground_checks: Vec<GroundCheck>,
    unsat_reason: Option<String>,
    output_vars: Vec<Box<str>>,
    distinct: bool,
}

impl QueryGraph {
    /// Transform a parsed SPARQL query against a loaded graph.
    pub fn build(query: &SelectQuery, rdf: &RdfGraph) -> Result<Self, QueryGraphError> {
        Builder::new(rdf).build(query)
    }

    /// Number of query vertices `|U|`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Iterate query vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = QVertexId> {
        (0..self.vertices.len() as u32).map(QVertexId)
    }

    /// Access one query vertex.
    pub fn vertex(&self, u: QVertexId) -> &QueryVertex {
        &self.vertices[u.index()]
    }

    /// All variable-variable edges (merged multi-edges).
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// Adjacency of `u` over variable-variable edges (self-loops excluded).
    pub fn adjacency(&self, u: QVertexId) -> &[QAdj] {
        &self.adj[u.index()]
    }

    /// Ground checks (variable-free patterns).
    pub fn ground_checks(&self) -> &[GroundCheck] {
        &self.ground_checks
    }

    /// `Some(reason)` when the query can have no answers on this data.
    pub fn unsat_reason(&self) -> Option<&str> {
        self.unsat_reason.as_deref()
    }

    /// `true` when the query can have no answers on this data.
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsat_reason.is_some()
    }

    /// The projection, in SELECT order.
    pub fn output_vars(&self) -> &[Box<str>] {
        &self.output_vars
    }

    /// `SELECT DISTINCT`?
    pub fn distinct(&self) -> bool {
        self.distinct
    }

    /// Find a variable's query vertex.
    pub fn vertex_by_name(&self, name: &str) -> Option<QVertexId> {
        self.vertices
            .iter()
            .position(|v| v.name.as_ref() == name)
            .map(QVertexId::from_index)
    }

    /// Degree used for core/satellite decomposition (§3): number of distinct
    /// *variable* neighbours, self excluded.
    pub fn degree(&self, u: QVertexId) -> usize {
        let mut neighbors: Vec<QVertexId> = self.adj[u.index()]
            .iter()
            .map(|a| a.neighbor)
            .filter(|&n| n != u)
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.len()
    }

    /// The signature `σ_u` of a query vertex: every incident multi-edge,
    /// including edges to IRI vertices and self-loops (both halves).
    pub fn signature(&self, u: QVertexId) -> VertexSignature {
        let mut sig = VertexSignature::default();
        for a in &self.adj[u.index()] {
            let types = self.edges[a.edge].types.clone();
            match a.direction {
                Direction::Incoming => sig.incoming.push(types),
                Direction::Outgoing => sig.outgoing.push(types),
            }
        }
        let vertex = &self.vertices[u.index()];
        for c in &vertex.iri_constraints {
            match c.direction {
                Direction::Incoming => sig.incoming.push(c.types.clone()),
                Direction::Outgoing => sig.outgoing.push(c.types.clone()),
            }
        }
        if let Some(loop_types) = &vertex.self_loop {
            sig.incoming.push(loop_types.clone());
            sig.outgoing.push(loop_types.clone());
        }
        sig
    }

    /// Connected components over variable-variable edges, each sorted by id.
    /// Isolated variables (only attributes / IRI constraints) form singleton
    /// components.
    pub fn connected_components(&self) -> Vec<Vec<QVertexId>> {
        let n = self.vertices.len();
        let mut component = vec![usize::MAX; n];
        let mut components: Vec<Vec<QVertexId>> = Vec::new();
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            component[start] = id;
            while let Some(v) = stack.pop() {
                members.push(QVertexId::from_index(v));
                for a in &self.adj[v] {
                    let n = a.neighbor.index();
                    if component[n] == usize::MAX {
                        component[n] = id;
                        stack.push(n);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }

    /// The merged multi-edge of the directed pair `(from, to)`, if any.
    pub fn multi_edge(&self, from: QVertexId, to: QVertexId) -> Option<&MultiEdge> {
        self.adj[from.index()]
            .iter()
            .find(|a| {
                a.neighbor == to
                    && a.direction == Direction::Outgoing
                    && self.edges[a.edge].from == from
            })
            .map(|a| &self.edges[a.edge].types)
    }

    /// Total number of triple-pattern constraints represented (used by tests
    /// to confirm nothing was dropped in the transformation).
    pub fn constraint_count(&self) -> usize {
        self.edges.iter().map(|e| e.types.len()).sum::<usize>()
            + self
                .vertices
                .iter()
                .map(|v| {
                    v.attrs.len()
                        + v.iri_constraints
                            .iter()
                            .map(|c| c.types.len())
                            .sum::<usize>()
                        + v.self_loop.as_ref().map_or(0, MultiEdge::len)
                })
                .sum::<usize>()
            + self
                .ground_checks
                .iter()
                .map(|g| match g {
                    GroundCheck::Edge { types, .. } => types.len(),
                    GroundCheck::Attribute { attrs, .. } => attrs.len(),
                })
                .sum::<usize>()
    }
}

/// Incremental builder that merges patterns into the query-graph shape.
struct Builder<'g> {
    rdf: &'g RdfGraph,
    var_lookup: FxHashMap<Box<str>, QVertexId>,
    names: Vec<Box<str>>,
    attrs: Vec<Vec<AttrId>>,
    self_loops: Vec<Vec<EdgeTypeId>>,
    iri_constraints: Vec<FxHashMap<(VertexId, Direction), Vec<EdgeTypeId>>>,
    edge_types: FxHashMap<(QVertexId, QVertexId), Vec<EdgeTypeId>>,
    ground_edges: FxHashMap<(VertexId, VertexId), Vec<EdgeTypeId>>,
    ground_attrs: FxHashMap<VertexId, Vec<AttrId>>,
    unsat_reason: Option<String>,
}

impl<'g> Builder<'g> {
    fn new(rdf: &'g RdfGraph) -> Self {
        Self {
            rdf,
            var_lookup: FxHashMap::default(),
            names: Vec::new(),
            attrs: Vec::new(),
            self_loops: Vec::new(),
            iri_constraints: Vec::new(),
            edge_types: FxHashMap::default(),
            ground_edges: FxHashMap::default(),
            ground_attrs: FxHashMap::default(),
            unsat_reason: None,
        }
    }

    fn mark_unsat(&mut self, reason: String) {
        if self.unsat_reason.is_none() {
            self.unsat_reason = Some(reason);
        }
    }

    fn variable(&mut self, name: &str) -> QVertexId {
        if let Some(&id) = self.var_lookup.get(name) {
            return id;
        }
        let id = QVertexId::from_index(self.names.len());
        self.var_lookup.insert(name.into(), id);
        self.names.push(name.into());
        self.attrs.push(Vec::new());
        self.self_loops.push(Vec::new());
        self.iri_constraints.push(FxHashMap::default());
        id
    }

    fn data_vertex(&mut self, iri: &str) -> Option<VertexId> {
        let v = self.rdf.vertex_by_key(iri);
        if v.is_none() {
            self.mark_unsat(format!("IRI <{iri}> does not occur in the data"));
        }
        v
    }

    fn edge_type(&mut self, iri: &str) -> Option<EdgeTypeId> {
        let t = self.rdf.edge_type_by_iri(iri);
        if t.is_none() {
            self.mark_unsat(format!("predicate <{iri}> does not occur in the data"));
        }
        t
    }

    fn build(mut self, query: &SelectQuery) -> Result<QueryGraph, QueryGraphError> {
        // Register variables in first-occurrence order so QVertexIds are
        // stable and predictable (u0, u1, … in pattern order).
        for pattern in &query.patterns {
            for v in pattern.variables() {
                self.variable(v);
            }
        }

        let literals_as_vertices = self.rdf.config().literals_as_vertices;

        for pattern in &query.patterns {
            let predicate = match &pattern.predicate {
                TermPattern::Iri(iri) => iri.clone(),
                TermPattern::Variable(v) => {
                    return Err(QueryGraphError::VariablePredicate(v.clone()))
                }
                TermPattern::Literal(_) => return Err(QueryGraphError::LiteralPredicate),
            };

            // In literals-as-vertices mode a literal object behaves exactly
            // like a constant IRI whose dictionary key is its N-Triples form.
            let object = match &pattern.object {
                TermPattern::Literal(lit) if literals_as_vertices => {
                    TermPattern::Iri(lit.to_string().into())
                }
                other => other.clone(),
            };

            match (&pattern.subject, &object) {
                (TermPattern::Literal(_), _) => return Err(QueryGraphError::LiteralSubject),

                // ?s <p> ?o
                (TermPattern::Variable(s), TermPattern::Variable(o)) => {
                    let (us, uo) = (self.variable(s), self.variable(o));
                    let Some(t) = self.edge_type(&predicate) else {
                        continue;
                    };
                    if us == uo {
                        self.self_loops[us.index()].push(t);
                    } else {
                        self.edge_types.entry((us, uo)).or_default().push(t);
                    }
                }

                // ?s <p> <o>
                (TermPattern::Variable(s), TermPattern::Iri(o)) => {
                    let us = self.variable(s);
                    let (Some(t), Some(vo)) = (self.edge_type(&predicate), self.data_vertex(o))
                    else {
                        continue;
                    };
                    self.iri_constraints[us.index()]
                        .entry((vo, Direction::Outgoing))
                        .or_default()
                        .push(t);
                }

                // ?s <p> "lit"
                (TermPattern::Variable(s), TermPattern::Literal(lit)) => {
                    let us = self.variable(s);
                    match self.rdf.dictionaries().attribute(&predicate, lit) {
                        Some(attr) => self.attrs[us.index()].push(attr),
                        None => self.mark_unsat(format!(
                            "attribute <{predicate}> {lit} does not occur in the data"
                        )),
                    }
                }

                // <s> <p> ?o
                (TermPattern::Iri(s), TermPattern::Variable(o)) => {
                    let uo = self.variable(o);
                    let (Some(t), Some(vs)) = (self.edge_type(&predicate), self.data_vertex(s))
                    else {
                        continue;
                    };
                    self.iri_constraints[uo.index()]
                        .entry((vs, Direction::Incoming))
                        .or_default()
                        .push(t);
                }

                // <s> <p> <o>
                (TermPattern::Iri(s), TermPattern::Iri(o)) => {
                    let (Some(t), Some(vs), Some(vo)) = (
                        self.edge_type(&predicate),
                        self.data_vertex(s),
                        self.data_vertex(o),
                    ) else {
                        continue;
                    };
                    self.ground_edges.entry((vs, vo)).or_default().push(t);
                }

                // <s> <p> "lit"
                (TermPattern::Iri(s), TermPattern::Literal(lit)) => {
                    let Some(vs) = self.data_vertex(s) else {
                        continue;
                    };
                    match self.rdf.dictionaries().attribute(&predicate, lit) {
                        Some(attr) => self.ground_attrs.entry(vs).or_default().push(attr),
                        None => self.mark_unsat(format!(
                            "attribute <{predicate}> {lit} does not occur in the data"
                        )),
                    }
                }
            }
        }

        self.finish(query)
    }

    fn finish(self, query: &SelectQuery) -> Result<QueryGraph, QueryGraphError> {
        let n = self.names.len();
        let mut vertices: Vec<QueryVertex> = Vec::with_capacity(n);
        for (i, name) in self.names.into_iter().enumerate() {
            let mut attrs = self.attrs[i].clone();
            attrs.sort_unstable();
            attrs.dedup();
            let mut iri_constraints: Vec<IriConstraint> = self.iri_constraints[i]
                .iter()
                .map(|(&(data_vertex, direction), types)| IriConstraint {
                    data_vertex,
                    direction,
                    types: MultiEdge::new(types.clone()),
                })
                .collect();
            iri_constraints.sort_by_key(|c| (c.data_vertex, c.direction.sign()));
            let self_loop = if self.self_loops[i].is_empty() {
                None
            } else {
                Some(MultiEdge::new(self.self_loops[i].clone()))
            };
            vertices.push(QueryVertex {
                name,
                attrs,
                iri_constraints,
                self_loop,
            });
        }

        let mut edges: Vec<QueryEdge> = self
            .edge_types
            .into_iter()
            .map(|((from, to), types)| QueryEdge {
                from,
                to,
                types: MultiEdge::new(types),
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));

        let mut adj: Vec<Vec<QAdj>> = vec![Vec::new(); n];
        for (idx, edge) in edges.iter().enumerate() {
            adj[edge.from.index()].push(QAdj {
                neighbor: edge.to,
                direction: Direction::Outgoing,
                edge: idx,
            });
            adj[edge.to.index()].push(QAdj {
                neighbor: edge.from,
                direction: Direction::Incoming,
                edge: idx,
            });
        }

        let mut ground_checks: Vec<GroundCheck> = Vec::new();
        let mut ground_edges: Vec<_> = self.ground_edges.into_iter().collect();
        ground_edges.sort_by_key(|&((f, t), _)| (f, t));
        for ((from, to), types) in ground_edges {
            ground_checks.push(GroundCheck::Edge {
                from,
                to,
                types: MultiEdge::new(types),
            });
        }
        let mut ground_attrs: Vec<_> = self.ground_attrs.into_iter().collect();
        ground_attrs.sort_by_key(|&(v, _)| v);
        for (vertex, mut attrs) in ground_attrs {
            attrs.sort_unstable();
            attrs.dedup();
            ground_checks.push(GroundCheck::Attribute { vertex, attrs });
        }

        Ok(QueryGraph {
            vertices,
            edges,
            adj,
            ground_checks,
            unsat_reason: self.unsat_reason,
            output_vars: query
                .output_variables()
                .into_iter()
                .map(Into::into)
                .collect(),
            distinct: query.distinct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RdfGraph;
    use amber_sparql::parse_select;

    fn data() -> RdfGraph {
        RdfGraph::parse_ntriples(
            r#"
<http://x/A> <http://p/e1> <http://x/B> .
<http://x/B> <http://p/e2> <http://x/C> .
<http://x/A> <http://p/e2> <http://x/A> .
<http://x/A> <http://p/name> "alpha" .
"#,
        )
        .unwrap()
    }

    fn qg(sparql: &str) -> QueryGraph {
        QueryGraph::build(&parse_select(sparql).unwrap(), &data()).unwrap()
    }

    #[test]
    fn variables_get_dense_ids_in_order() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . ?b <http://p/e2> ?c . }");
        assert_eq!(q.vertex_count(), 3);
        assert_eq!(q.vertex(QVertexId(0)).name.as_ref(), "a");
        assert_eq!(q.vertex(QVertexId(1)).name.as_ref(), "b");
        assert_eq!(q.vertex(QVertexId(2)).name.as_ref(), "c");
        assert_eq!(q.vertex_by_name("c"), Some(QVertexId(2)));
    }

    #[test]
    fn parallel_patterns_merge_into_multi_edge() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . ?a <http://p/e2> ?b . }");
        assert_eq!(q.edges().len(), 1);
        assert_eq!(q.edges()[0].types.len(), 2);
        assert!(!q.is_unsatisfiable());
    }

    #[test]
    fn opposite_directions_stay_separate() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . ?b <http://p/e2> ?a . }");
        assert_eq!(q.edges().len(), 2);
        // degree counts the neighbour once
        assert_eq!(q.degree(QVertexId(0)), 1);
        assert_eq!(q.degree(QVertexId(1)), 1);
    }

    #[test]
    fn literal_objects_become_attrs() {
        let q = qg("SELECT * WHERE { ?a <http://p/name> \"alpha\" . ?a <http://p/e1> ?b . }");
        let a = q.vertex(QVertexId(0));
        assert_eq!(a.attrs.len(), 1);
        assert!(!q.is_unsatisfiable());
    }

    #[test]
    fn unknown_literal_marks_unsat() {
        let q = qg("SELECT * WHERE { ?a <http://p/name> \"missing\" . }");
        assert!(q.is_unsatisfiable());
        assert!(q.unsat_reason().unwrap().contains("attribute"));
    }

    #[test]
    fn unknown_predicate_marks_unsat() {
        let q = qg("SELECT * WHERE { ?a <http://p/nope> ?b . }");
        assert!(q.is_unsatisfiable());
    }

    #[test]
    fn unknown_iri_marks_unsat() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> <http://x/Nope> . }");
        assert!(q.is_unsatisfiable());
    }

    #[test]
    fn iri_constraints_carry_direction() {
        let q = qg(
            "SELECT * WHERE { ?a <http://p/e1> <http://x/B> . <http://x/A> <http://p/e1> ?a . }",
        );
        let a = q.vertex(QVertexId(0));
        assert_eq!(a.iri_constraints.len(), 2);
        let outgoing = a
            .iri_constraints
            .iter()
            .find(|c| c.direction == Direction::Outgoing)
            .unwrap();
        let incoming = a
            .iri_constraints
            .iter()
            .find(|c| c.direction == Direction::Incoming)
            .unwrap();
        assert_eq!(data().vertex_name(outgoing.data_vertex), "http://x/B");
        assert_eq!(data().vertex_name(incoming.data_vertex), "http://x/A");
    }

    #[test]
    fn self_loop_pattern() {
        let q = qg("SELECT * WHERE { ?a <http://p/e2> ?a . }");
        assert_eq!(q.edges().len(), 0);
        assert!(q.vertex(QVertexId(0)).self_loop.is_some());
        // self loop contributes to both signature halves
        let sig = q.signature(QVertexId(0));
        assert_eq!(sig.incoming.len(), 1);
        assert_eq!(sig.outgoing.len(), 1);
    }

    #[test]
    fn ground_checks_are_collected() {
        let q = qg(
            "SELECT * WHERE { <http://x/A> <http://p/e1> <http://x/B> . <http://x/A> <http://p/name> \"alpha\" . ?s <http://p/e2> ?o . }",
        );
        assert_eq!(q.ground_checks().len(), 2);
        assert!(!q.is_unsatisfiable());
    }

    #[test]
    fn signature_includes_iri_edges() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . ?a <http://p/e2> <http://x/C> . }");
        let sig = q.signature(QVertexId(0));
        assert_eq!(sig.outgoing.len(), 2); // one var edge + one IRI edge
        assert_eq!(sig.incoming.len(), 0);
    }

    #[test]
    fn components_split_disconnected_queries() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . ?c <http://p/e2> ?d . }");
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![QVertexId(0), QVertexId(1)]);
        assert_eq!(comps[1], vec![QVertexId(2), QVertexId(3)]);
    }

    #[test]
    fn multi_edge_lookup_is_directional() {
        let q = qg("SELECT * WHERE { ?a <http://p/e1> ?b . }");
        assert!(q.multi_edge(QVertexId(0), QVertexId(1)).is_some());
        assert!(q.multi_edge(QVertexId(1), QVertexId(0)).is_none());
    }

    #[test]
    fn variable_predicate_in_ast_is_an_error() {
        use amber_sparql::{Projection, TriplePattern};
        let query = SelectQuery {
            projection: Projection::Star,
            distinct: false,
            patterns: vec![TriplePattern::new(
                TermPattern::var("s"),
                TermPattern::var("p"),
                TermPattern::var("o"),
            )],
        };
        assert_eq!(
            QueryGraph::build(&query, &data()).unwrap_err(),
            QueryGraphError::VariablePredicate("p".into())
        );
    }

    #[test]
    fn constraint_count_preserves_patterns() {
        let q = qg(
            "SELECT * WHERE { ?a <http://p/e1> ?b . ?a <http://p/e2> ?b . ?a <http://p/name> \"alpha\" . ?b <http://p/e2> <http://x/C> . }",
        );
        assert_eq!(q.constraint_count(), 4);
    }

    #[test]
    fn distinct_and_projection_are_recorded() {
        let q = qg("SELECT DISTINCT ?b WHERE { ?a <http://p/e1> ?b . }");
        assert!(q.distinct());
        assert_eq!(q.output_vars(), &["b".into()]);
    }
}
