//! Interning dictionaries (paper §2.1.1, Table 2).
//!
//! Three dictionaries map RDF entities to dense identifiers: vertices
//! (subjects / IRI objects), edge types (predicates) and attributes
//! (`<predicate, literal>` tuples). Each is a [`Dictionary`] — a string
//! interner with O(1) forward (`Mv`, `Me`, `Ma`) and inverse (`Mv⁻¹`, …)
//! lookup.

use amber_util::{FxHashMap, HeapSize};
use rdf_model::Literal;

/// A string ↔ dense-id interner.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    forward: FxHashMap<Box<str>, u32>,
    inverse: Vec<Box<str>>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `key`, returning its (possibly fresh) id.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.forward.get(key) {
            return id;
        }
        let id = u32::try_from(self.inverse.len()).expect("dictionary exceeded u32 ids");
        let owned: Box<str> = key.into();
        self.forward.insert(owned.clone(), id);
        self.inverse.push(owned);
        id
    }

    /// Forward lookup without interning.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.forward.get(key).copied()
    }

    /// Inverse lookup (`M⁻¹`).
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.inverse.get(id as usize).map(AsRef::as_ref)
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.inverse.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.inverse.is_empty()
    }

    /// Iterate `(id, key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.inverse
            .iter()
            .enumerate()
            .map(|(i, k)| (i as u32, k.as_ref()))
    }
}

impl HeapSize for Dictionary {
    fn heap_size(&self) -> usize {
        self.forward.heap_size() + self.inverse.heap_size()
    }
}

/// The canonical dictionary key of an attribute `<predicate, literal>` pair.
///
/// The literal is rendered in N-Triples syntax so that plain, language-tagged
/// and datatyped literals with equal lexical forms stay distinct; `\u{0}`
/// separates the two halves (it cannot occur in an IRI).
pub fn attribute_key(predicate: &str, literal: &Literal) -> String {
    format!("{predicate}\u{0}{literal}")
}

/// The three dictionaries of Table 2 plus their mapping helpers.
#[derive(Debug, Default, Clone)]
pub struct Dictionaries {
    /// `Mv`: subject / IRI-object → vertex id (Table 2a).
    pub vertices: Dictionary,
    /// `Me`: predicate → edge type id (Table 2b).
    pub edge_types: Dictionary,
    /// `Ma`: `<predicate, literal>` → attribute id (Table 2c).
    pub attributes: Dictionary,
}

impl Dictionaries {
    /// Forward-map an attribute pair without interning.
    pub fn attribute(&self, predicate: &str, literal: &Literal) -> Option<crate::AttrId> {
        self.attributes
            .get(&attribute_key(predicate, literal))
            .map(crate::AttrId)
    }

    /// Inverse-map an attribute id back to `(predicate, literal-ntriples)`.
    pub fn resolve_attribute(&self, attr: crate::AttrId) -> Option<(&str, &str)> {
        let key = self.attributes.resolve(attr.0)?;
        key.split_once('\u{0}')
    }
}

impl HeapSize for Dictionaries {
    fn heap_size(&self) -> usize {
        self.vertices.heap_size() + self.edge_types.heap_size() + self.attributes.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::Iri;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("http://x/London");
        let b = d.intern("http://x/London");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
    }

    #[test]
    fn inverse_resolves() {
        let mut d = Dictionary::new();
        let id = d.intern("http://y/isPartOf");
        assert_eq!(d.resolve(id), Some("http://y/isPartOf"));
        assert_eq!(d.resolve(id + 1), None);
    }

    #[test]
    fn get_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.get("missing"), None);
        assert!(d.is_empty());
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn attribute_keys_distinguish_literal_kinds() {
        let plain = attribute_key("http://y/name", &Literal::plain("A"));
        let lang = attribute_key("http://y/name", &Literal::lang("A", "en"));
        let typed = attribute_key("http://y/name", &Literal::typed("A", Iri::new("http://t")));
        assert_ne!(plain, lang);
        assert_ne!(plain, typed);
        assert_ne!(lang, typed);
    }

    #[test]
    fn attribute_round_trip() {
        let mut dicts = Dictionaries::default();
        let lit = Literal::plain("90000");
        let key = attribute_key("http://y/hasCapacityOf", &lit);
        let id = crate::AttrId(dicts.attributes.intern(&key));
        assert_eq!(dicts.attribute("http://y/hasCapacityOf", &lit), Some(id));
        let (pred, lit_nt) = dicts.resolve_attribute(id).unwrap();
        assert_eq!(pred, "http://y/hasCapacityOf");
        assert_eq!(lit_nt, "\"90000\"");
    }

    #[test]
    fn heap_size_is_nonzero_after_interning() {
        let mut d = Dictionary::new();
        d.intern("some reasonably long dictionary key");
        assert!(d.heap_size() > 0);
    }
}
