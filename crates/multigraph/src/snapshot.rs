//! Binary snapshots of the offline stage.
//!
//! The paper's offline stage is run once and its output reused across
//! queries (Table 5 reports the stored database size). This module
//! serializes a loaded [`RdfGraph`] — dictionaries plus multigraph — into a
//! versioned, length-prefixed binary image and restores it without
//! re-parsing the original N-Triples. Index structures are *not* stored:
//! they rebuild in linear time from the graph (also how the paper accounts
//! them separately).
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  "AMBR"            4 bytes
//! version u32              currently 1
//! flags   u8               bit 0 = literals_as_vertices
//! triple_count u64
//! 3 × dictionary           u32 count, then count × (u32 len, utf-8 bytes)
//! vertex_count u32
//! per vertex: out-adjacency u32 entries, then per entry:
//!             u32 neighbor, u32 type_count, type_count × u32
//! per vertex: u32 attr_count, attr_count × u32
//! ```
//!
//! The incoming adjacency is reconstructed from the outgoing lists, which
//! halves the image size at a small load cost.

use crate::builder::{GraphConfig, RdfGraph};
use crate::data_graph::{AdjEntry, DataGraph, MultiEdge};
use crate::dictionary::{Dictionaries, Dictionary};
use crate::ids::{AttrId, EdgeTypeId, VertexId};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"AMBR";
const VERSION: u32 = 1;

/// Snapshot decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The image ended prematurely or a length field overruns it.
    Truncated,
    /// A dictionary entry is not valid UTF-8.
    BadUtf8,
    /// An id field references past the declared table sizes.
    CorruptIds,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an AMbER snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot is truncated or corrupt"),
            SnapshotError::BadUtf8 => write!(f, "snapshot dictionary contains invalid UTF-8"),
            SnapshotError::CorruptIds => write!(f, "snapshot references out-of-range ids"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_dictionary(buf: &mut BytesMut, dict: &Dictionary) {
    buf.put_u32_le(dict.len() as u32);
    for (_, key) in dict.iter() {
        buf.put_u32_le(key.len() as u32);
        buf.put_slice(key.as_bytes());
    }
}

fn take_dictionary(buf: &mut &[u8]) -> Result<Dictionary, SnapshotError> {
    let count = take_u32(buf)? as usize;
    let mut dict = Dictionary::new();
    for _ in 0..count {
        let len = take_u32(buf)? as usize;
        if buf.remaining() < len {
            return Err(SnapshotError::Truncated);
        }
        let bytes = &buf[..len];
        let key = std::str::from_utf8(bytes).map_err(|_| SnapshotError::BadUtf8)?;
        dict.intern(key);
        buf.advance(len);
    }
    Ok(dict)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, SnapshotError> {
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated);
    }
    Ok(buf.get_u64_le())
}

impl RdfGraph {
    /// Serialize to a binary image.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let graph = self.graph();
        let mut buf = BytesMut::with_capacity(64 + 16 * graph.edge_pair_count());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u8(u8::from(self.config().literals_as_vertices));
        buf.put_u64_le(self.triple_count() as u64);
        put_dictionary(&mut buf, &self.dictionaries().vertices);
        put_dictionary(&mut buf, &self.dictionaries().edge_types);
        put_dictionary(&mut buf, &self.dictionaries().attributes);

        buf.put_u32_le(graph.vertex_count() as u32);
        for v in graph.vertices() {
            let out = graph.out_edges(v);
            buf.put_u32_le(out.len() as u32);
            for entry in out {
                buf.put_u32_le(entry.neighbor.0);
                buf.put_u32_le(entry.types.len() as u32);
                for t in entry.types.types() {
                    buf.put_u32_le(t.0);
                }
            }
        }
        for v in graph.vertices() {
            let attrs = graph.attributes(v);
            buf.put_u32_le(attrs.len() as u32);
            for a in attrs {
                buf.put_u32_le(a.0);
            }
        }
        buf.to_vec()
    }

    /// Restore from a binary image.
    pub fn from_snapshot(mut bytes: &[u8]) -> Result<Self, SnapshotError> {
        let buf = &mut bytes;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        buf.advance(4);
        let version = take_u32(buf)?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let flags = buf.get_u8();
        let config = GraphConfig {
            literals_as_vertices: flags & 1 != 0,
        };
        let triple_count = take_u64(buf)? as usize;

        let vertices = take_dictionary(buf)?;
        let edge_types = take_dictionary(buf)?;
        let attributes = take_dictionary(buf)?;
        let dicts = Dictionaries {
            vertices,
            edge_types,
            attributes,
        };

        let vertex_count = take_u32(buf)? as usize;
        if vertex_count != dicts.vertices.len() {
            return Err(SnapshotError::CorruptIds);
        }
        let mut out_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); vertex_count];
        let mut in_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); vertex_count];
        // `from` indexes `out_adj` while the body also indexes `in_adj` by
        // neighbor, so the range loop is the clear form here.
        #[allow(clippy::needless_range_loop)]
        for from in 0..vertex_count {
            let entries = take_u32(buf)? as usize;
            for _ in 0..entries {
                let neighbor = take_u32(buf)?;
                if neighbor as usize >= vertex_count {
                    return Err(SnapshotError::CorruptIds);
                }
                let type_count = take_u32(buf)? as usize;
                let mut types = Vec::with_capacity(type_count);
                for _ in 0..type_count {
                    let t = take_u32(buf)?;
                    if t as usize >= dicts.edge_types.len() {
                        return Err(SnapshotError::CorruptIds);
                    }
                    types.push(EdgeTypeId(t));
                }
                let multi = MultiEdge::new(types);
                out_adj[from].push(AdjEntry {
                    neighbor: VertexId(neighbor),
                    types: multi.clone(),
                });
                in_adj[neighbor as usize].push(AdjEntry {
                    neighbor: VertexId(from as u32),
                    types: multi,
                });
            }
        }
        let mut attrs: Vec<Box<[AttrId]>> = Vec::with_capacity(vertex_count);
        for _ in 0..vertex_count {
            let count = take_u32(buf)? as usize;
            let mut list = Vec::with_capacity(count);
            for _ in 0..count {
                let a = take_u32(buf)?;
                if a as usize >= dicts.attributes.len() {
                    return Err(SnapshotError::CorruptIds);
                }
                list.push(AttrId(a));
            }
            attrs.push(list.into_boxed_slice());
        }
        if buf.has_remaining() {
            return Err(SnapshotError::Truncated); // trailing garbage
        }

        for list in in_adj.iter_mut() {
            list.sort_unstable_by_key(|e| e.neighbor);
        }
        let finalize = |adj: Vec<Vec<AdjEntry>>| -> Vec<Box<[AdjEntry]>> {
            adj.into_iter().map(Vec::into_boxed_slice).collect()
        };
        let edge_type_count = dicts.edge_types.len();
        let graph =
            DataGraph::from_parts(finalize(out_adj), finalize(in_adj), attrs, edge_type_count);
        Ok(Self::from_restored(graph, dicts, triple_count, config))
    }

    /// Write a snapshot file.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_snapshot())
    }

    /// Read a snapshot file.
    pub fn load_snapshot(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, Box<dyn std::error::Error + Send + Sync>> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_snapshot(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::paper::{paper_graph, paper_triples};

    fn assert_graphs_equal(a: &RdfGraph, b: &RdfGraph) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.config(), b.config());
        let (ga, gb) = (a.graph(), b.graph());
        for v in ga.vertices() {
            assert_eq!(a.vertex_name(v), b.vertex_name(v));
            assert_eq!(ga.out_edges(v), gb.out_edges(v));
            assert_eq!(ga.in_edges(v), gb.in_edges(v));
            assert_eq!(ga.attributes(v), gb.attributes(v));
        }
        for (id, key) in a.dictionaries().edge_types.iter() {
            assert_eq!(b.dictionaries().edge_types.resolve(id), Some(key));
        }
        for (id, key) in a.dictionaries().attributes.iter() {
            assert_eq!(b.dictionaries().attributes.resolve(id), Some(key));
        }
    }

    #[test]
    fn round_trips_the_paper_graph() {
        let original = paper_graph();
        let image = original.to_snapshot();
        let restored = RdfGraph::from_snapshot(&image).expect("valid image");
        assert_graphs_equal(&original, &restored);
    }

    #[test]
    fn round_trips_extension_mode() {
        let mut builder = GraphBuilder::with_config(GraphConfig {
            literals_as_vertices: true,
        });
        let triples = paper_triples();
        builder.add_triples(&triples);
        let original = builder.finish();
        let restored = RdfGraph::from_snapshot(&original.to_snapshot()).unwrap();
        assert!(restored.config().literals_as_vertices);
        assert_graphs_equal(&original, &restored);
    }

    #[test]
    fn round_trips_empty_graph() {
        let original = RdfGraph::from_triples([]);
        let restored = RdfGraph::from_snapshot(&original.to_snapshot()).unwrap();
        assert_graphs_equal(&original, &restored);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert_eq!(
            RdfGraph::from_snapshot(b"NOPE").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut image = paper_graph().to_snapshot();
        image[4] = 99; // version field
        assert_eq!(
            RdfGraph::from_snapshot(&image).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let image = paper_graph().to_snapshot();
        // every strict prefix must fail cleanly, never panic
        for len in 0..image.len() {
            assert!(
                RdfGraph::from_snapshot(&image[..len]).is_err(),
                "prefix of {len} bytes decoded successfully?!"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut image = paper_graph().to_snapshot();
        image.extend_from_slice(b"extra");
        assert_eq!(
            RdfGraph::from_snapshot(&image).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("amber_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper.amber");
        let original = paper_graph();
        original.save_snapshot(&path).unwrap();
        let restored = RdfGraph::load_snapshot(&path).unwrap();
        assert_graphs_equal(&original, &restored);
        std::fs::remove_file(&path).ok();
    }
}
