//! Streaming construction of the data multigraph from RDF triples
//! (the paper's offline transformation, §2.1.1).
//!
//! The four transformation protocols of §2.1.1:
//!
//! 1. a subject is always a vertex,
//! 2. a predicate is always an edge (type),
//! 3. an IRI object is a vertex,
//! 4. a literal object is folded with its predicate into a vertex attribute
//!    `<p, o>` of the subject.
//!
//! [`GraphConfig::literals_as_vertices`] switches protocol 4 off and
//! materializes literals as vertices instead — the extension mode discussed
//! in DESIGN.md (full-SPARQL semantics for variable objects over literals).

use crate::data_graph::{AdjEntry, DataGraph, MultiEdge};
use crate::dictionary::{attribute_key, Dictionaries};
use crate::ids::{AttrId, EdgeTypeId, VertexId};
use amber_util::{FxHashMap, HeapSize};
use rdf_model::{NtParseError, Object, Triple};

/// Construction options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphConfig {
    /// When `true`, literal objects become vertices (keyed by their
    /// N-Triples form) instead of vertex attributes. Default: `false`
    /// (the paper's model).
    pub literals_as_vertices: bool,
}

/// Accumulates triples and finalizes into an [`RdfGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    config: GraphConfig,
    dicts: Dictionaries,
    /// Directed pair → accumulated edge types.
    pairs: FxHashMap<(VertexId, VertexId), Vec<EdgeTypeId>>,
    /// Per-vertex accumulated attributes.
    attrs: Vec<Vec<AttrId>>,
    triple_count: usize,
}

impl GraphBuilder {
    /// A builder with the paper's default transformation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with explicit [`GraphConfig`].
    pub fn with_config(config: GraphConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Pre-intern a vertex, pinning its id to the current dictionary size.
    ///
    /// Lets tests and generators reproduce a specific id assignment (e.g.
    /// the exact `v0…v8` of the paper's Table 2a) regardless of triple
    /// order.
    pub fn declare_vertex(&mut self, key: &str) -> VertexId {
        self.vertex(key)
    }

    /// Pre-intern an edge type (see [`GraphBuilder::declare_vertex`]).
    pub fn declare_edge_type(&mut self, predicate: &str) -> EdgeTypeId {
        EdgeTypeId(self.dicts.edge_types.intern(predicate))
    }

    /// Pre-intern an attribute (see [`GraphBuilder::declare_vertex`]).
    pub fn declare_attribute(&mut self, predicate: &str, literal: &rdf_model::Literal) -> AttrId {
        AttrId(
            self.dicts
                .attributes
                .intern(&attribute_key(predicate, literal)),
        )
    }

    fn vertex(&mut self, key: &str) -> VertexId {
        let id = VertexId(self.dicts.vertices.intern(key));
        if id.index() >= self.attrs.len() {
            self.attrs.resize_with(id.index() + 1, Vec::new);
        }
        id
    }

    /// Add one RDF triple.
    pub fn add_triple(&mut self, triple: &Triple) {
        self.triple_count += 1;
        let subject = self.vertex(&triple.subject.dictionary_key());
        match &triple.object {
            Object::Literal(lit) if !self.config.literals_as_vertices => {
                // Protocol 4: <predicate, literal> becomes an attribute of
                // the subject vertex.
                let key = attribute_key(triple.predicate.as_str(), lit);
                let attr = AttrId(self.dicts.attributes.intern(&key));
                self.attrs[subject.index()].push(attr);
            }
            object => {
                let object_key = match object {
                    Object::Literal(lit) => lit.to_string(), // extension mode
                    other => other
                        .resource_key()
                        .expect("non-literal object has a resource key"),
                };
                let object = self.vertex(&object_key);
                let edge_type = EdgeTypeId(self.dicts.edge_types.intern(triple.predicate.as_str()));
                self.pairs
                    .entry((subject, object))
                    .or_default()
                    .push(edge_type);
            }
        }
    }

    /// Add many triples.
    pub fn add_triples<'a>(&mut self, triples: impl IntoIterator<Item = &'a Triple>) {
        for t in triples {
            self.add_triple(t);
        }
    }

    /// Finalize into the immutable graph + dictionaries bundle.
    pub fn finish(self) -> RdfGraph {
        let n = self.dicts.vertices.len();
        let mut out_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); n];
        for ((from, to), types) in self.pairs {
            let types = MultiEdge::new(types);
            out_adj[from.index()].push(AdjEntry {
                neighbor: to,
                types: types.clone(),
            });
            in_adj[to.index()].push(AdjEntry {
                neighbor: from,
                types,
            });
        }
        let finalize_adj = |mut adj: Vec<Vec<AdjEntry>>| -> Vec<Box<[AdjEntry]>> {
            adj.iter_mut()
                .for_each(|list| list.sort_unstable_by_key(|e| e.neighbor));
            adj.into_iter().map(Vec::into_boxed_slice).collect()
        };
        let attrs = self
            .attrs
            .into_iter()
            .map(|mut a| {
                a.sort_unstable();
                a.dedup();
                a.into_boxed_slice()
            })
            .collect();
        let graph = DataGraph::from_parts(
            finalize_adj(out_adj),
            finalize_adj(in_adj),
            attrs,
            self.dicts.edge_types.len(),
        );
        RdfGraph {
            graph,
            dicts: self.dicts,
            triple_count: self.triple_count,
            config: self.config,
        }
    }
}

/// Table 4-style statistics of a loaded graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// RDF triples consumed.
    pub triples: usize,
    /// `|V|`.
    pub vertices: usize,
    /// `|E|` (directed vertex pairs with a multi-edge).
    pub edges: usize,
    /// `|T|` (distinct predicates that became edge types).
    pub edge_types: usize,
    /// `|A|` (distinct `<predicate, literal>` attributes).
    pub attributes: usize,
}

/// A data multigraph together with its dictionaries — the output of the
/// offline transformation stage.
#[derive(Debug, Clone)]
pub struct RdfGraph {
    graph: DataGraph,
    dicts: Dictionaries,
    triple_count: usize,
    config: GraphConfig,
}

impl RdfGraph {
    /// Reassemble from restored parts (snapshot loading).
    pub(crate) fn from_restored(
        graph: DataGraph,
        dicts: Dictionaries,
        triple_count: usize,
        config: GraphConfig,
    ) -> Self {
        Self {
            graph,
            dicts,
            triple_count,
            config,
        }
    }

    /// Transform a tripleset with the default (paper) configuration.
    pub fn from_triples<'a>(triples: impl IntoIterator<Item = &'a Triple>) -> Self {
        let mut builder = GraphBuilder::new();
        builder.add_triples(triples);
        builder.finish()
    }

    /// Parse and transform an N-Triples document.
    pub fn parse_ntriples(input: &str) -> Result<Self, NtParseError> {
        let mut builder = GraphBuilder::new();
        for triple in rdf_model::NtParser::new(input) {
            builder.add_triple(&triple?);
        }
        Ok(builder.finish())
    }

    /// Parse and transform a Turtle document (the subset real dumps use —
    /// see [`rdf_model::turtle`]).
    pub fn parse_turtle(input: &str) -> Result<Self, rdf_model::TurtleParseError> {
        let triples = rdf_model::parse_turtle(input)?;
        Ok(Self::from_triples(&triples))
    }

    /// The multigraph `G`.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The dictionaries (Table 2).
    pub fn dictionaries(&self) -> &Dictionaries {
        &self.dicts
    }

    /// The construction configuration.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Number of RDF triples consumed.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// Forward vertex lookup (`Mv`), by dictionary key (IRI text or
    /// `_:label`).
    pub fn vertex_by_key(&self, key: &str) -> Option<VertexId> {
        self.dicts.vertices.get(key).map(VertexId)
    }

    /// Forward edge-type lookup (`Me`) by predicate IRI.
    pub fn edge_type_by_iri(&self, iri: &str) -> Option<EdgeTypeId> {
        self.dicts.edge_types.get(iri).map(EdgeTypeId)
    }

    /// Inverse vertex lookup (`Mv⁻¹`).
    pub fn vertex_name(&self, v: VertexId) -> &str {
        self.dicts
            .vertices
            .resolve(v.0)
            .expect("vertex id from this graph")
    }

    /// Inverse edge-type lookup (`Me⁻¹`).
    pub fn edge_type_name(&self, t: EdgeTypeId) -> &str {
        self.dicts
            .edge_types
            .resolve(t.0)
            .expect("edge type id from this graph")
    }

    /// Table 4-style statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            triples: self.triple_count,
            vertices: self.graph.vertex_count(),
            edges: self.graph.edge_pair_count(),
            edge_types: self.graph.edge_type_count(),
            attributes: self.dicts.attributes.len(),
        }
    }
}

impl HeapSize for RdfGraph {
    fn heap_size(&self) -> usize {
        self.graph.heap_size() + self.dicts.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::parse_ntriples;

    const SAMPLE: &str = r#"
<http://x/London> <http://y/isPartOf> <http://x/England> .
<http://x/England> <http://y/hasCapital> <http://x/London> .
<http://x/WembleyStadium> <http://y/hasCapacityOf> "90000" .
<http://x/London> <http://y/hasStadium> <http://x/WembleyStadium> .
<http://x/London> <http://y/isPartOf> <http://x/England> .
"#;

    #[test]
    fn builds_vertices_edges_attributes() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let rdf = RdfGraph::from_triples(&triples);
        let stats = rdf.stats();
        assert_eq!(stats.triples, 5);
        assert_eq!(stats.vertices, 3); // London, England, WembleyStadium
        assert_eq!(stats.edges, 3); // L->E, E->L, L->W
        assert_eq!(stats.edge_types, 3); // isPartOf, hasCapital, hasStadium
        assert_eq!(stats.attributes, 1); // <hasCapacityOf,"90000">
    }

    #[test]
    fn duplicate_triples_collapse() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let rdf = RdfGraph::from_triples(&triples);
        let london = rdf.vertex_by_key("http://x/London").unwrap();
        let england = rdf.vertex_by_key("http://x/England").unwrap();
        let m = rdf.graph().multi_edge(london, england).unwrap();
        assert_eq!(m.len(), 1, "duplicate isPartOf must not duplicate the type");
    }

    #[test]
    fn literal_objects_become_attributes() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let rdf = RdfGraph::from_triples(&triples);
        let wembley = rdf.vertex_by_key("http://x/WembleyStadium").unwrap();
        let attrs = rdf.graph().attributes(wembley);
        assert_eq!(attrs.len(), 1);
        let (pred, lit) = rdf.dictionaries().resolve_attribute(attrs[0]).unwrap();
        assert_eq!(pred, "http://y/hasCapacityOf");
        assert_eq!(lit, "\"90000\"");
        // and the literal did NOT become a vertex
        assert!(rdf.vertex_by_key("\"90000\"").is_none());
    }

    #[test]
    fn literals_as_vertices_mode() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let mut builder = GraphBuilder::with_config(GraphConfig {
            literals_as_vertices: true,
        });
        builder.add_triples(&triples);
        let rdf = builder.finish();
        assert_eq!(rdf.stats().vertices, 4); // + the "90000" literal vertex
        assert_eq!(rdf.stats().attributes, 0);
        let lit_vertex = rdf.vertex_by_key("\"90000\"").unwrap();
        let wembley = rdf.vertex_by_key("http://x/WembleyStadium").unwrap();
        assert!(rdf.graph().multi_edge(wembley, lit_vertex).is_some());
    }

    #[test]
    fn parse_ntriples_convenience() {
        let rdf = RdfGraph::parse_ntriples(SAMPLE).unwrap();
        assert_eq!(rdf.triple_count(), 5);
        assert!(RdfGraph::parse_ntriples("garbage").is_err());
    }

    #[test]
    fn in_out_adjacency_are_symmetric() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let rdf = RdfGraph::from_triples(&triples);
        let g = rdf.graph();
        for v in g.vertices() {
            for e in g.out_edges(v) {
                let back = g
                    .in_edges(e.neighbor)
                    .iter()
                    .find(|b| b.neighbor == v)
                    .expect("incoming mirror");
                assert_eq!(back.types, e.types);
            }
        }
    }

    #[test]
    fn inverse_lookups_round_trip() {
        let triples = parse_ntriples(SAMPLE).unwrap();
        let rdf = RdfGraph::from_triples(&triples);
        let v = rdf.vertex_by_key("http://x/London").unwrap();
        assert_eq!(rdf.vertex_name(v), "http://x/London");
        let t = rdf.edge_type_by_iri("http://y/isPartOf").unwrap();
        assert_eq!(rdf.edge_type_name(t), "http://y/isPartOf");
    }

    #[test]
    fn blank_nodes_are_vertices() {
        let rdf = RdfGraph::parse_ntriples("_:a <http://y/knows> _:b .").unwrap();
        assert_eq!(rdf.stats().vertices, 2);
        assert!(rdf.vertex_by_key("_:a").is_some());
    }

    #[test]
    fn empty_graph() {
        let rdf = RdfGraph::from_triples([]);
        assert_eq!(rdf.stats().vertices, 0);
        assert_eq!(rdf.stats().triples, 0);
        assert_eq!(rdf.graph().vertex_count(), 0);
    }
}
