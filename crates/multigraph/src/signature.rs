//! Vertex signatures and synopses (paper §4.2, Definition 3, Table 3).
//!
//! The *vertex signature* `σ_v` of a vertex is the multiset of directed
//! multi-edges incident on it, split into incoming (`+`) and outgoing (`-`)
//! halves. From each half four features are extracted:
//!
//! * `f1` — maximum cardinality of a multi-edge,
//! * `f2` — number of distinct edge types,
//! * `f3` — **negated** minimum edge-type index,
//! * `f4` — maximum edge-type index.
//!
//! `f3` is stored negated so that *all eight* fields obey the same dominance
//! rule (Lemma 1): a data vertex `v` can match a query vertex `u` only if
//! `f_i(u) ≤ f_i(v)` for every field — a rectangular-containment query that
//! the R-tree index `S` answers. Empty halves are zero-filled, exactly as in
//! Table 3.

use crate::data_graph::{DataGraph, MultiEdge};
use crate::ids::VertexId;
use amber_util::HeapSize;

/// Number of synopsis fields (4 per direction).
pub const SYNOPSIS_DIMS: usize = 8;

/// The signature `σ_v`: incoming and outgoing multi-edge multisets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VertexSignature {
    /// `σ⁺`: multi-edges arriving at the vertex.
    pub incoming: Vec<MultiEdge>,
    /// `σ⁻`: multi-edges leaving the vertex.
    pub outgoing: Vec<MultiEdge>,
}

impl VertexSignature {
    /// The signature of a data vertex, read off the adjacency lists.
    pub fn of_data_vertex(graph: &DataGraph, v: VertexId) -> Self {
        Self {
            incoming: graph.in_edges(v).iter().map(|e| e.types.clone()).collect(),
            outgoing: graph.out_edges(v).iter().map(|e| e.types.clone()).collect(),
        }
    }

    /// Compute the 8-field synopsis (Table 3).
    pub fn synopsis(&self) -> Synopsis {
        let (in_f, out_f) = (
            direction_features(&self.incoming),
            direction_features(&self.outgoing),
        );
        Synopsis([
            in_f[0], in_f[1], in_f[2], in_f[3], out_f[0], out_f[1], out_f[2], out_f[3],
        ])
    }

    /// The query-side synopsis used for dominance probes.
    ///
    /// **Deviation from the paper (soundness fix).** §4.2 zero-fills all four
    /// fields of an edge-less direction, on the data *and* the query side.
    /// Zero is correct for `f1`, `f2` and `f4` (every data value is ≥ 0),
    /// but not for the negated minimum `f3`: a query vertex with *no*
    /// incoming edges imposes no incoming constraint, yet `f3⁺(u) = 0` would
    /// prune every data vertex whose smallest incoming type id is > 0
    /// (`f3⁺(v) < 0`) — a false negative that violates Lemma 1. The paper's
    /// own example (u0 vs {v1, v7}) doesn't expose this because those data
    /// vertices happen to have empty directions too. We therefore fill the
    /// query-side `f3` of an empty direction with `i64::MIN`, the identity
    /// of the dominance order. Data-side synopses keep the paper's exact
    /// zero-filling (Table 3 is reproduced verbatim by [`Self::synopsis`]).
    pub fn query_synopsis(&self) -> Synopsis {
        let mut s = self.synopsis();
        if self.incoming.is_empty() {
            s.0[2] = i64::MIN;
        }
        if self.outgoing.is_empty() {
            s.0[6] = i64::MIN;
        }
        s
    }

    /// Total number of incident edge-type instances — the paper's ranking
    /// quantity `r2(u) = Σ_j |σ(u)_j|` (§5.3).
    pub fn edge_instance_count(&self) -> usize {
        self.incoming
            .iter()
            .chain(&self.outgoing)
            .map(MultiEdge::len)
            .sum()
    }
}

/// `[f1⁺, f2⁺, f3⁺, f4⁺, f1⁻, f2⁻, f3⁻, f4⁻]` per Table 3.
fn direction_features(multi_edges: &[MultiEdge]) -> [i64; 4] {
    if multi_edges.is_empty() {
        return [0; 4];
    }
    let f1 = multi_edges
        .iter()
        .map(|m| m.len() as i64)
        .max()
        .unwrap_or(0);
    let mut distinct: Vec<u32> = multi_edges
        .iter()
        .flat_map(|m| m.types().iter().map(|t| t.0))
        .collect();
    distinct.sort_unstable();
    distinct.dedup();
    let f2 = distinct.len() as i64;
    let f3 = -(i64::from(*distinct.first().expect("non-empty multi-edge set")));
    let f4 = i64::from(*distinct.last().expect("non-empty multi-edge set"));
    [f1, f2, f3, f4]
}

/// The 8-field surrogate of a vertex signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Synopsis(pub [i64; SYNOPSIS_DIMS]);

impl Synopsis {
    /// The all-zero synopsis (a vertex with no edges).
    pub fn zero() -> Self {
        Self([0; SYNOPSIS_DIMS])
    }

    /// Dominance test of Lemma 1: can a data vertex with synopsis `self`
    /// possibly match a query vertex with synopsis `query`?
    ///
    /// `true` iff `query[i] ≤ self[i]` for all `i`.
    #[inline]
    pub fn dominates(&self, query: &Synopsis) -> bool {
        self.0.iter().zip(query.0.iter()).all(|(d, q)| q <= d)
    }

    /// Field accessor.
    pub fn fields(&self) -> &[i64; SYNOPSIS_DIMS] {
        &self.0
    }
}

impl HeapSize for Synopsis {
    fn heap_size(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeTypeId;

    fn me(ids: &[u32]) -> MultiEdge {
        MultiEdge::new(ids.iter().map(|&i| EdgeTypeId(i)).collect())
    }

    #[test]
    fn empty_signature_is_zero() {
        let sig = VertexSignature::default();
        assert_eq!(sig.synopsis(), Synopsis::zero());
        assert_eq!(sig.edge_instance_count(), 0);
    }

    #[test]
    fn paper_v2_synopsis() {
        // σ_v2 = σ⁺ {{t1},{t5},{t6},{t4,t5}}, σ⁻ {{t0},{t2}} — Table 3 row v2:
        // f⁺ = (2, 4, -1, 6), f⁻ = (1, 2, 0, 2).
        let sig = VertexSignature {
            incoming: vec![me(&[1]), me(&[5]), me(&[6]), me(&[4, 5])],
            outgoing: vec![me(&[0]), me(&[2])],
        };
        assert_eq!(sig.synopsis(), Synopsis([2, 4, -1, 6, 1, 2, 0, 2]));
        assert_eq!(sig.edge_instance_count(), 7);
    }

    #[test]
    fn paper_v1_synopsis() {
        // σ_v1 = σ⁻ {{t3},{t7},{t8},{t4,t5}} — Table 3: f⁺ zero, f⁻ = (2,5,-3,8).
        let sig = VertexSignature {
            incoming: vec![],
            outgoing: vec![me(&[3]), me(&[7]), me(&[8]), me(&[4, 5])],
        };
        assert_eq!(sig.synopsis(), Synopsis([0, 0, 0, 0, 2, 5, -3, 8]));
    }

    #[test]
    fn paper_v8_synopsis_min_type_zero() {
        // σ_v8 = σ⁺ {{t0}} — f3 = -0 = 0: Table 3 row v8 = (1,1,0,0,0,0,0,0).
        let sig = VertexSignature {
            incoming: vec![me(&[0])],
            outgoing: vec![],
        };
        assert_eq!(sig.synopsis(), Synopsis([1, 1, 0, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn dominance_is_reflexive_and_antitone() {
        let s = Synopsis([2, 4, -1, 6, 1, 2, 0, 2]);
        assert!(s.dominates(&s));
        assert!(s.dominates(&Synopsis::zero()) || s.0.iter().any(|&f| f < 0));
        // A query needing more types than the data vertex has is rejected.
        let bigger = Synopsis([3, 4, -1, 6, 1, 2, 0, 2]);
        assert!(!s.dominates(&bigger));
        assert!(bigger.dominates(&s));
    }

    #[test]
    fn paper_u0_candidates_prune_correctly() {
        // §4.2 example: query vertex u0 with σ⁻ = {{t5}} must match v1 and
        // v7 but prune v6 (whose out types are {t3}).
        let u0 = VertexSignature {
            incoming: vec![],
            outgoing: vec![me(&[5])],
        }
        .synopsis();
        let v1 = Synopsis([0, 0, 0, 0, 2, 5, -3, 8]);
        let v7 = Synopsis([0, 0, 0, 0, 1, 3, 0, 5]);
        let v6 = Synopsis([1, 1, -8, 8, 1, 1, -3, 3]);
        assert!(v1.dominates(&u0));
        assert!(v7.dominates(&u0));
        assert!(!v6.dominates(&u0));
    }

    #[test]
    fn query_synopsis_does_not_prune_unconstrained_directions() {
        // Soundness fix: a query vertex with no incoming edges must accept a
        // data vertex whose incoming types start above 0. The paper's
        // zero-filled query synopsis would wrongly prune it.
        let query = VertexSignature {
            incoming: vec![],
            outgoing: vec![me(&[5])],
        };
        let data = VertexSignature {
            incoming: vec![me(&[1])], // f3⁺ = -1 < 0
            outgoing: vec![me(&[5])],
        }
        .synopsis();
        // The paper's plain synopsis: false negative.
        assert!(!data.dominates(&query.synopsis()));
        // The fixed query synopsis: accepted.
        assert!(data.dominates(&query.query_synopsis()));
    }

    #[test]
    fn query_synopsis_equals_synopsis_when_both_directions_present() {
        let sig = VertexSignature {
            incoming: vec![me(&[1])],
            outgoing: vec![me(&[2])],
        };
        assert_eq!(sig.synopsis(), sig.query_synopsis());
    }

    #[test]
    fn negated_min_rejects_smaller_query_types() {
        // Query requires incoming type t0; data vertex only has incoming t2.
        // Without the f3 negation this would (wrongly) pass.
        let query = VertexSignature {
            incoming: vec![me(&[0])],
            outgoing: vec![],
        }
        .synopsis();
        let data = VertexSignature {
            incoming: vec![me(&[2])],
            outgoing: vec![],
        }
        .synopsis();
        assert!(!data.dominates(&query));
    }
}
