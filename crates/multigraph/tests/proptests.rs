//! Property-based tests for the multigraph substrate: builder invariants,
//! snapshot round-trips, signature monotonicity.

use amber_multigraph::{Direction, GraphBuilder, GraphConfig, RdfGraph, VertexSignature};
use proptest::prelude::*;
use rdf_model::{Iri, Literal, Triple};

fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0u8..10, 0u8..5, 0u8..12, any::<bool>()), 0..80).prop_map(|rows| {
        rows.into_iter()
            .map(|(s, p, o, literal)| {
                if literal {
                    Triple::new(
                        Iri::new(format!("http://v/{s}")),
                        Iri::new(format!("http://p/{p}")),
                        Literal::plain(format!("lit{o}")),
                    )
                } else {
                    Triple::resource(
                        &format!("http://v/{s}"),
                        &format!("http://p/{p}"),
                        &format!("http://v/{o}"),
                    )
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// In/out adjacency are exact mirrors for any input.
    #[test]
    fn adjacency_is_symmetric(triples in arb_triples()) {
        let rdf = RdfGraph::from_triples(&triples);
        let g = rdf.graph();
        let mut mirrored = 0usize;
        for v in g.vertices() {
            for e in g.out_edges(v) {
                let back = g
                    .in_edges(e.neighbor)
                    .iter()
                    .find(|b| b.neighbor == v)
                    .expect("incoming mirror exists");
                prop_assert_eq!(&back.types, &e.types);
                mirrored += 1;
            }
        }
        prop_assert_eq!(mirrored, g.edge_pair_count());
    }

    /// Graph construction is idempotent under triple duplication.
    #[test]
    fn duplicates_change_nothing_but_triple_count(triples in arb_triples()) {
        let once = RdfGraph::from_triples(&triples);
        let doubled: Vec<Triple> = triples.iter().chain(triples.iter()).cloned().collect();
        let twice = RdfGraph::from_triples(&doubled);
        let (a, b) = (once.stats(), twice.stats());
        prop_assert_eq!(a.vertices, b.vertices);
        prop_assert_eq!(a.edges, b.edges);
        prop_assert_eq!(a.edge_types, b.edge_types);
        prop_assert_eq!(a.attributes, b.attributes);
        prop_assert_eq!(b.triples, 2 * a.triples);
    }

    /// Snapshot round-trip preserves the graph bit-for-bit, both modes.
    #[test]
    fn snapshot_round_trip(triples in arb_triples(), extension in any::<bool>()) {
        let mut builder = GraphBuilder::with_config(GraphConfig {
            literals_as_vertices: extension,
        });
        builder.add_triples(&triples);
        let original = builder.finish();
        let restored = RdfGraph::from_snapshot(&original.to_snapshot()).expect("round trip");
        prop_assert_eq!(original.stats(), restored.stats());
        prop_assert_eq!(original.config(), restored.config());
        let (ga, gb) = (original.graph(), restored.graph());
        for v in ga.vertices() {
            prop_assert_eq!(original.vertex_name(v), restored.vertex_name(v));
            prop_assert_eq!(ga.out_edges(v), gb.out_edges(v));
            prop_assert_eq!(ga.attributes(v), gb.attributes(v));
        }
        // A second encode of the restored graph is byte-identical.
        prop_assert_eq!(original.to_snapshot(), restored.to_snapshot());
    }

    /// Truncated snapshots error instead of panicking, at any cut point.
    #[test]
    fn snapshot_truncation_is_safe(triples in arb_triples(), cut in 0.0f64..1.0) {
        let image = RdfGraph::from_triples(&triples).to_snapshot();
        let len = ((image.len() as f64) * cut) as usize;
        if len < image.len() {
            prop_assert!(RdfGraph::from_snapshot(&image[..len]).is_err());
        }
    }

    /// Data synopses dominate the query synopsis of any sub-signature:
    /// removing multi-edges from a signature can only weaken it (Lemma 1's
    /// monotonicity, the property the matcher relies on).
    #[test]
    fn synopsis_is_monotone_in_the_signature(triples in arb_triples(), keep in any::<u64>()) {
        let rdf = RdfGraph::from_triples(&triples);
        let g = rdf.graph();
        for v in g.vertices() {
            let full = VertexSignature::of_data_vertex(g, v);
            // Pseudo-randomly drop some multi-edges.
            let sub = VertexSignature {
                incoming: full
                    .incoming
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (keep >> (i % 64)) & 1 == 1)
                    .map(|(_, m)| m.clone())
                    .collect(),
                outgoing: full
                    .outgoing
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (keep >> ((i + 17) % 64)) & 1 == 1)
                    .map(|(_, m)| m.clone())
                    .collect(),
            };
            prop_assert!(
                full.synopsis().dominates(&sub.query_synopsis()),
                "sub-signature not dominated for {v:?}"
            );
        }
    }

    /// Degree equals the size of the merged neighbour set, any direction mix.
    #[test]
    fn degree_matches_neighbor_union(triples in arb_triples()) {
        let rdf = RdfGraph::from_triples(&triples);
        let g = rdf.graph();
        for v in g.vertices() {
            let mut names: Vec<_> = g
                .edges(v, Direction::Incoming)
                .iter()
                .chain(g.edges(v, Direction::Outgoing))
                .map(|e| e.neighbor)
                .collect();
            names.sort_unstable();
            names.dedup();
            prop_assert_eq!(g.degree(v), names.len());
        }
    }
}
