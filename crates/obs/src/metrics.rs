//! The metric registry: counters, gauges, log₂ histograms, snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

// ---------------------------------------------------------------------------
// Metric primitives (hot path: relaxed atomics only).
// ---------------------------------------------------------------------------

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths,
/// entry counts, retained bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Move the value by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket *i* (1-based)
/// holds values with bit length *i*, i.e. the range `[2^(i-1), 2^i - 1]`.
/// A `u64` has at most 64 bits, so 65 buckets cover the full domain.
pub const BUCKETS: usize = 65;

/// A histogram over `u64` observations (µs, bytes, node counts) with
/// log₂ buckets — one `fetch_add` per observation, no floating point.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            count += n;
            if n != 0 {
                // Upper bound of bucket i: 0 for i == 0, else 2^i - 1.
                let le = if i == 0 {
                    0
                } else if i == 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                buckets.push((le, count));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum(),
            buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// Label set: static keys and values (fault-point names, cache layers,
/// outcome kinds — all known at compile time).
type Labels = Vec<(&'static str, &'static str)>;
type Key = (&'static str, Labels);

#[derive(Default)]
struct Shard {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

const SHARDS: usize = 8;

struct Registry {
    shards: [Shard; SHARDS],
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        shards: std::array::from_fn(|_| Shard::default()),
    })
}

fn shard_of(name: &str) -> usize {
    // FNV-1a over the metric name; labels share their name's shard so a
    // family snapshots from one map.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARDS
}

fn lookup<T: Default>(
    map: &RwLock<BTreeMap<Key, Arc<T>>>,
    name: &'static str,
    labels: &[(&'static str, &'static str)],
) -> Arc<T> {
    let key_ref = (name, labels);
    {
        let read = map.read().unwrap_or_else(|e| e.into_inner());
        // BTreeMap can't be probed with a borrowed key of this shape;
        // registration is cold, so a linear probe of the (small) shard
        // beats allocating a key per lookup.
        if let Some((_, v)) = read
            .iter()
            .find(|((n, l), _)| *n == key_ref.0 && l.as_slice() == key_ref.1)
        {
            return Arc::clone(v);
        }
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(
        write
            .entry((name, labels.to_vec()))
            .or_insert_with(|| Arc::new(T::default())),
    )
}

/// Register (or fetch) the counter `name{labels}`. Cold path: cache the
/// returned handle at the call site.
pub fn counter(name: &'static str, labels: &[(&'static str, &'static str)]) -> Arc<Counter> {
    lookup(&registry().shards[shard_of(name)].counters, name, labels)
}

/// Register (or fetch) the gauge `name{labels}`.
pub fn gauge(name: &'static str, labels: &[(&'static str, &'static str)]) -> Arc<Gauge> {
    lookup(&registry().shards[shard_of(name)].gauges, name, labels)
}

/// Register (or fetch) the histogram `name{labels}`.
pub fn histogram(name: &'static str, labels: &[(&'static str, &'static str)]) -> Arc<Histogram> {
    lookup(&registry().shards[shard_of(name)].histograms, name, labels)
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// A read of one histogram: total count, sum, and the non-empty buckets
/// as `(inclusive upper bound, cumulative count)` pairs in ascending
/// order. `count` is derived from the buckets themselves, so it always
/// equals the last cumulative entry even under concurrent writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets: `(upper bound, cumulative count ≤ bound)`.
    pub buckets: Vec<(u64, u64)>,
}

/// One metric's value in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram read.
    Histogram(HistogramSnapshot),
}

/// One `name{labels}` series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric family name.
    pub name: &'static str,
    /// Label pairs, in registration order.
    pub labels: Labels,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time read of every registered metric, sorted by
/// `(name, labels)` so renders are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

/// Read every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let mut samples = Vec::new();
    for shard in &registry().shards {
        let counters = shard.counters.read().unwrap_or_else(|e| e.into_inner());
        for ((name, labels), c) in counters.iter() {
            samples.push(Sample {
                name,
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        drop(counters);
        let gauges = shard.gauges.read().unwrap_or_else(|e| e.into_inner());
        for ((name, labels), g) in gauges.iter() {
            samples.push(Sample {
                name,
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        drop(gauges);
        let histograms = shard.histograms.read().unwrap_or_else(|e| e.into_inner());
        for ((name, labels), h) in histograms.iter() {
            samples.push(Sample {
                name,
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
    }
    samples.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
    MetricsSnapshot { samples }
}

impl MetricsSnapshot {
    /// The counter `name{labels}`, or 0 if never registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge `name{labels}`, or 0 if never registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.find(name, labels) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram `name{labels}`, if registered.
    pub fn histogram_value(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        match self.find(name, labels) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of all counters named `name`, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
            })
            .map(|s| &s.value)
    }

    /// Render in the Prometheus text exposition format (the fixture the
    /// future HTTP `/metrics` endpoint serves verbatim).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for sample in &self.samples {
            if sample.name != last_name {
                let kind = match &sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", sample.name, kind));
                last_name = sample.name;
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        prom_labels(&sample.labels, None),
                        v
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        sample.name,
                        prom_labels(&sample.labels, None),
                        v
                    ));
                }
                MetricValue::Histogram(h) => {
                    for (le, cumulative) in &h.buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            sample.name,
                            prom_labels(&sample.labels, Some(&le.to_string())),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        sample.name,
                        prom_labels(&sample.labels, Some("+Inf")),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        sample.name,
                        prom_labels(&sample.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        sample.name,
                        prom_labels(&sample.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// Render as JSON, parseable by `amber_bench::minijson` (object keys
    /// are unique; numbers stay within the f64-exact integer range for
    /// any realistic run).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\": [");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"name\": {}", json_str(sample.name)));
            out.push_str(", \"labels\": {");
            for (j, (k, v)) in sample.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_str(k), json_str(v)));
            }
            out.push('}');
            match &sample.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(", \"type\": \"counter\", \"value\": {}", v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(", \"type\": \"gauge\", \"value\": {}", v));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ", \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                        h.count, h.sum
                    ));
                    for (j, (le, cumulative)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{}, {}]", le, cumulative));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn prom_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{}=\"{}\"",
            k,
            v.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{}\"", le));
    }
    out.push('}');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = counter("test_obs_counter_total", &[("case", "accumulate")]);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // A second registration returns the same underlying counter.
        let again = counter("test_obs_counter_total", &[("case", "accumulate")]);
        again.inc();
        assert_eq!(c.get(), 43);
        // A different label set is a different series.
        let other = counter("test_obs_counter_total", &[("case", "other")]);
        assert_eq!(other.get(), 0);
        let snap = snapshot();
        assert_eq!(
            snap.counter_value("test_obs_counter_total", &[("case", "accumulate")]),
            43
        );
        assert_eq!(snap.counter_total("test_obs_counter_total"), 43);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("test_obs_gauge", &[]);
        g.add(5);
        g.add(-3);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(snapshot().gauge_value("test_obs_gauge", &[]), -7);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        let h = histogram("test_obs_hist", &[]);
        h.observe(0); // bucket 0 (le 0)
        h.observe(1); // bucket 1 (le 1)
        h.observe(2); // bucket 2 (le 3)
        h.observe(3); // bucket 2 (le 3)
        h.observe(1024); // bucket 11 (le 2047)
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let snap = snapshot();
        let hs = snap.histogram_value("test_obs_hist", &[]).unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1030);
        assert_eq!(hs.buckets, vec![(0, 1), (1, 2), (3, 4), (2047, 5)]);
    }

    #[test]
    fn renderers_cover_every_kind() {
        counter("test_obs_render_total", &[("kind", "a")]).add(7);
        gauge("test_obs_render_depth", &[]).set(3);
        histogram("test_obs_render_us", &[]).observe(5);
        let snap = snapshot();
        let prom = snap.render_prometheus();
        assert!(prom.contains("# TYPE test_obs_render_total counter"));
        assert!(prom.contains("test_obs_render_total{kind=\"a\"} 7"));
        assert!(prom.contains("# TYPE test_obs_render_depth gauge"));
        assert!(prom.contains("test_obs_render_depth 3"));
        assert!(prom.contains("test_obs_render_us_bucket{le=\"7\"} 1"));
        assert!(prom.contains("test_obs_render_us_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("test_obs_render_us_sum 5"));
        assert!(prom.contains("test_obs_render_us_count 1"));
        let json = snap.render_json();
        assert!(json.contains("\"name\": \"test_obs_render_total\""));
        assert!(json.contains("\"type\": \"histogram\""));
        // Balanced braces/brackets — the real parse round-trip lives in
        // the obs_dump bin (which has minijson in scope).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = counter("test_obs_concurrent_total", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
