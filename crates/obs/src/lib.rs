//! Unified telemetry for the AMbER reproduction.
//!
//! Three pieces, all dependency-free:
//!
//! * a process-wide, lock-free-on-the-hot-path **metric registry**
//!   ([`counter`]/[`gauge`]/[`histogram`]) of monotonic counters, gauges
//!   and log₂-bucketed histograms, readable at any time as a consistent
//!   [`MetricsSnapshot`] with Prometheus-text and JSON renderers;
//! * a per-session **flight recorder** ([`FlightRecorder`]) capturing
//!   span timings around the query pipeline stages into a fixed-size
//!   ring buffer, with a slow-query log rendering the span tree;
//! * the **`AMBER_OBS` gate** ([`obs_enabled`]): `AMBER_OBS=off` (or
//!   `0`/`false`) pins the whole subsystem off for the process, so the
//!   only residual cost at instrumentation sites is one relaxed atomic
//!   load and a predictable branch.
//!
//! Handles returned by the registry are `Arc`s: call sites look a metric
//! up once (typically through a `OnceLock`-cached struct of handles) and
//! then mutate it with relaxed atomics only — no locks, no allocation.
//! Registration itself is the cold path and takes a sharded `RwLock`.
//!
//! Numbers discipline: the engine keeps its legacy per-session stat
//! structs (`CacheStats`, `PoolStats`, …) as the hot-path accounting and
//! *delta-flushes* them into this registry once per query, so the
//! registry and the legacy reports are derived from the same counters
//! and can never disagree (pinned by `tests/obs_equivalence.rs`).

mod metrics;
mod trace;

pub use metrics::{
    counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    MetricsSnapshot, Sample,
};
pub use trace::{FlightRecorder, QueryTrace, SpanRecord};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};

// ---------------------------------------------------------------------------
// The AMBER_OBS gate.
// ---------------------------------------------------------------------------

/// Lazily-read `AMBER_OBS` verdict: 0 = unread, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Scoped override (tests / in-process benches): 0 = none, 1 = off, 2 = on.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is enabled for this process. Reads the `AMBER_OBS`
/// environment variable once (any of `off`, `0`, `false` — case
/// insensitive — disables; everything else, including unset, enables)
/// and caches the verdict; after that this is one relaxed atomic load.
#[inline]
pub fn obs_enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("AMBER_OBS") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Serializes [`force_enabled`] scopes so concurrent tests/bench cells
/// can't interleave their overrides.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Restores the previous override when dropped (see [`force_enabled`]).
pub struct ObsGuard {
    _serial: MutexGuard<'static, ()>,
    prev: u8,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        FORCE.store(self.prev, Ordering::Relaxed);
    }
}

/// Force the gate on or off for the lifetime of the returned guard,
/// regardless of `AMBER_OBS`. The environment variable is read once per
/// process, so in-process A/B cells (the `obs_speedup` bench cells) and
/// gate tests use this instead of `set_var`. Scopes are serialized on a
/// global lock, mirroring `amber_util::fault::override_spec`.
pub fn force_enabled(on: bool) -> ObsGuard {
    let serial = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = FORCE.swap(if on { 2 } else { 1 }, Ordering::Relaxed);
    ObsGuard {
        _serial: serial,
        prev,
    }
}

#[cfg(test)]
mod gate_tests {
    use super::*;

    #[test]
    fn force_overrides_and_restores() {
        {
            let _off = force_enabled(false);
            assert!(!obs_enabled());
        }
        {
            let _on = force_enabled(true);
            assert!(obs_enabled());
        }
        // With no override the env verdict (default: on, unless the test
        // runner exported AMBER_OBS=off) is back in charge.
        let env_says = std::env::var("AMBER_OBS")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                !(v == "off" || v == "0" || v == "false")
            })
            .unwrap_or(true);
        assert_eq!(obs_enabled(), env_says);
    }
}
