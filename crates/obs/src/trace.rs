//! The per-query flight recorder: span timings, ring buffer, slow log.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// One completed pipeline-stage span inside a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`canonicalize`, `plan`, `component[0]`, …).
    pub stage: String,
    /// Nesting depth (0 = top-level stage, 1 = inside `execute`, …).
    pub depth: u8,
    /// Start offset from the query's begin, in µs.
    pub start_us: u64,
    /// Duration in µs.
    pub duration_us: u64,
}

/// Everything the recorder captured about one query.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Short caller-supplied label (query shape, tenant, …).
    pub label: String,
    /// Canonical plan fingerprint, once known.
    pub fingerprint: Option<u64>,
    /// Dispatch decisions, one per executed component (the same lines
    /// `EXPLAIN` prints).
    pub dispatch: Vec<String>,
    /// Cache hit/miss trail in event order (`plan:hit`, `result:miss`, …).
    pub cache_trail: Vec<&'static str>,
    /// Degradation-ladder steps the memory governor applied.
    pub degradation_steps: u64,
    /// Abort cause, if the query did not complete (`timed out`, …).
    pub abort: Option<String>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Final status label (`completed`, `timed_out`, `error`, …).
    pub status: String,
    /// Wall time from begin to end, in µs.
    pub total_us: u64,
}

impl QueryTrace {
    /// Render the span tree plus the captured metadata, one line per
    /// span, indented by depth — the slow-query-log entry format and the
    /// `EXPLAIN ANALYZE` span section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fp = match self.fingerprint {
            Some(fp) => format!(" fingerprint {:#018x}", fp),
            None => String::new(),
        };
        out.push_str(&format!(
            "query \"{}\"{} [{} in {} µs]\n",
            self.label, fp, self.status, self.total_us
        ));
        // Spans land in *completion* order (a parent `execute` span closes
        // after its children); print in start order, parents first.
        let mut spans: Vec<&SpanRecord> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_us, s.depth));
        for span in spans {
            out.push_str(&format!(
                "  {:indent$}{:<24} {:>8} µs  (at +{} µs)\n",
                "",
                span.stage,
                span.duration_us,
                span.start_us,
                indent = 2 * span.depth as usize
            ));
        }
        for d in &self.dispatch {
            out.push_str(&format!("  dispatch: {}\n", d));
        }
        if !self.cache_trail.is_empty() {
            out.push_str(&format!("  caches: {}\n", self.cache_trail.join(" ")));
        }
        if self.degradation_steps > 0 {
            out.push_str(&format!(
                "  degradation steps: {}\n",
                self.degradation_steps
            ));
        }
        if let Some(cause) = &self.abort {
            out.push_str(&format!("  abort: {}\n", cause));
        }
        out
    }
}

/// How many slow-log entries a recorder retains.
const SLOW_LOG_CAPACITY: usize = 16;

/// A per-session flight recorder: an in-flight trace plus a fixed-size
/// ring of completed [`QueryTrace`]s and a slow-query log.
///
/// Capture is double-gated: the per-session `enabled` knob **and** the
/// process-wide [`obs_enabled`](crate::obs_enabled) gate must both be on
/// before [`begin`](Self::begin) opens a trace; with either off, every
/// method is a cheap no-op (one branch on an `Option`).
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    slow_threshold: Option<Duration>,
    capacity: usize,
    ring: VecDeque<QueryTrace>,
    slow_log: VecDeque<String>,
    active: Option<(QueryTrace, Instant)>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(32)
    }
}

impl FlightRecorder {
    /// A disabled recorder retaining at most `capacity` completed traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: false,
            slow_threshold: None,
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            slow_log: VecDeque::new(),
            active: None,
        }
    }

    /// Turn span capture on/off and set the slow-query threshold: a
    /// completed trace whose total wall time is ≥ the threshold is
    /// rendered into the slow log (`Some(Duration::ZERO)` logs every
    /// query; `None` logs none).
    pub fn configure(&mut self, enabled: bool, slow_threshold: Option<Duration>) {
        self.enabled = enabled;
        self.slow_threshold = slow_threshold;
    }

    /// The knobs as last [`configure`](Self::configure)d — lets a caller
    /// (e.g. `EXPLAIN ANALYZE`) force tracing on and restore afterwards.
    pub fn config(&self) -> (bool, Option<Duration>) {
        (self.enabled, self.slow_threshold)
    }

    /// Whether [`begin`](Self::begin) would open a trace right now.
    pub fn is_active(&self) -> bool {
        self.enabled && crate::obs_enabled()
    }

    /// Whether a trace is currently open (spans/notes will be captured).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Open a trace for the query starting now. No-op unless
    /// [`is_active`](Self::is_active).
    pub fn begin(&mut self, label: impl Into<String>) {
        if !self.is_active() {
            return;
        }
        let trace = QueryTrace {
            label: label.into(),
            ..QueryTrace::default()
        };
        self.active = Some((trace, Instant::now()));
    }

    /// Record a completed span of `duration` ending now.
    #[inline]
    pub fn span(&mut self, stage: impl Into<String>, depth: u8, duration: Duration) {
        if let Some((trace, started)) = &mut self.active {
            let end_us = started.elapsed().as_micros() as u64;
            let duration_us = duration.as_micros() as u64;
            trace.spans.push(SpanRecord {
                stage: stage.into(),
                depth,
                start_us: end_us.saturating_sub(duration_us),
                duration_us,
            });
        }
    }

    /// Append a cache hit/miss event to the trail.
    #[inline]
    pub fn note_cache(&mut self, event: &'static str) {
        if let Some((trace, _)) = &mut self.active {
            trace.cache_trail.push(event);
        }
    }

    /// Record one component's dispatch decision.
    #[inline]
    pub fn note_dispatch(&mut self, line: String) {
        if let Some((trace, _)) = &mut self.active {
            trace.dispatch.push(line);
        }
    }

    /// Record one degradation-ladder step.
    #[inline]
    pub fn note_degradation(&mut self) {
        if let Some((trace, _)) = &mut self.active {
            trace.degradation_steps += 1;
        }
    }

    /// Attach the canonical plan fingerprint.
    #[inline]
    pub fn set_fingerprint(&mut self, fingerprint: u64) {
        if let Some((trace, _)) = &mut self.active {
            trace.fingerprint = Some(fingerprint);
        }
    }

    /// Record why the query aborted (kept alongside the final status).
    #[inline]
    pub fn set_abort(&mut self, cause: impl Into<String>) {
        if let Some((trace, _)) = &mut self.active {
            trace.abort = Some(cause.into());
        }
    }

    /// Close the open trace with its final status, push it into the
    /// ring, and slow-log it if it crossed the threshold. Returns `true`
    /// if the trace was slow-logged. No-op (returns `false`) when no
    /// trace is open.
    pub fn end(&mut self, status: &str) -> bool {
        let Some((mut trace, started)) = self.active.take() else {
            return false;
        };
        let total = started.elapsed();
        trace.total_us = total.as_micros() as u64;
        trace.status = status.to_string();
        let slow = match self.slow_threshold {
            Some(threshold) => total >= threshold,
            None => false,
        };
        if slow {
            if self.slow_log.len() == SLOW_LOG_CAPACITY {
                self.slow_log.pop_front();
            }
            self.slow_log.push_back(trace.render());
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(trace);
        slow
    }

    /// Completed traces, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &QueryTrace> {
        self.ring.iter()
    }

    /// The most recently completed trace.
    pub fn last(&self) -> Option<&QueryTrace> {
        self.ring.back()
    }

    /// Rendered slow-query-log entries, oldest first.
    pub fn slow_log(&self) -> impl Iterator<Item = &str> {
        self.slow_log.iter().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_captures_nothing() {
        let mut r = FlightRecorder::new(4);
        r.begin("q");
        assert!(!r.is_recording());
        r.span("plan", 0, Duration::from_micros(5));
        assert!(!r.end("completed"));
        assert_eq!(r.traces().count(), 0);
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _on = crate::force_enabled(true);
        let mut r = FlightRecorder::new(2);
        r.configure(true, None);
        for i in 0..3 {
            r.begin(format!("q{i}"));
            r.span("plan", 0, Duration::from_micros(1));
            r.end("completed");
        }
        let labels: Vec<_> = r.traces().map(|t| t.label.clone()).collect();
        assert_eq!(labels, vec!["q1", "q2"]);
        assert_eq!(r.last().unwrap().label, "q2");
    }

    #[test]
    fn slow_log_renders_the_span_tree() {
        let _on = crate::force_enabled(true);
        let mut r = FlightRecorder::new(4);
        r.configure(true, Some(Duration::ZERO));
        r.begin("slow query");
        r.set_fingerprint(0xabcd);
        r.span("canonicalize", 0, Duration::from_micros(3));
        r.span("component[0]", 1, Duration::from_micros(9));
        r.note_cache("plan:miss");
        r.note_dispatch("sequential".to_string());
        r.note_degradation();
        r.set_abort("timed out");
        assert!(r.end("timed_out"));
        let entry = r.slow_log().next().unwrap().to_string();
        assert!(entry.contains("query \"slow query\" fingerprint 0x000000000000abcd"));
        assert!(entry.contains("timed_out"));
        assert!(entry.contains("canonicalize"));
        assert!(entry.contains("component[0]"));
        assert!(entry.contains("caches: plan:miss"));
        assert!(entry.contains("dispatch: sequential"));
        assert!(entry.contains("degradation steps: 1"));
        assert!(entry.contains("abort: timed out"));
    }

    #[test]
    fn env_gate_vetoes_the_session_knob() {
        let _off = crate::force_enabled(false);
        let mut r = FlightRecorder::new(4);
        r.configure(true, Some(Duration::ZERO));
        assert!(!r.is_active());
        r.begin("q");
        assert!(!r.end("completed"));
        assert_eq!(r.traces().count(), 0);
    }
}
